"""The static concurrency analyzer: REPRO008 races, REPRO009 ordering.

Every planted fixture asserts the *witness*: exact file, line, and the
attribute/lock (or cycle sites) named in the message — a finding an
operator cannot locate is a finding they cannot fix.
"""

import textwrap

from repro.analysis import analyze_files, analyze_source
from repro.analysis.lint import run_lint

PATH = "src/repro/serve/example.py"


def _analyze(source, path=PATH, select=None):
    return analyze_source(textwrap.dedent(source), path, select=select)


def _findings(source, **kwargs):
    return _analyze(source, **kwargs).findings


# ----------------------------------------------------------------------
# REPRO008: guarded attributes
# ----------------------------------------------------------------------
RACE_FIXTURE = """\
import threading


class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self._jobs = []

    def start(self):
        thread = threading.Thread(target=self._run)
        thread.start()

    def add(self):
        with self._lock:
            self.count += 1

    def total(self):
        with self._lock:
            return self.count

    def _run(self):
        self.count -= 1
"""


def test_inferred_guard_flags_unlocked_thread_reachable_write():
    findings = _findings(RACE_FIXTURE)
    assert [f.rule for f in findings] == ["REPRO008"]
    finding = findings[0]
    assert finding.path == PATH
    # The witness names the exact unlocked statement (`self.count -= 1`).
    assert finding.line == 23
    assert "self.count" in finding.message
    assert "self._lock" in finding.message
    assert "inferred" in finding.message
    assert "_run" in finding.message


def test_single_locked_access_never_infers_a_guard():
    # `_jobs` is touched only in __init__; `count` needs >= 2 locked
    # accesses before inference kicks in, so a class with one locked
    # read stays silent.
    source = """\
    import threading


    class Quiet:
        def __init__(self):
            self._lock = threading.Lock()
            self.value = 0

        def start(self):
            threading.Thread(target=self._run).start()

        def read(self):
            with self._lock:
                return self.value

        def _run(self):
            self.value += 1
    """
    assert _findings(source) == []


ANNOTATED_FIXTURE = """\
import threading


class Buffer:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # guarded-by: _lock

    def start(self):
        threading.Thread(target=self.worker).start()

    def worker(self):
        self.items.append(1)
"""


def test_annotated_guard_is_strict_even_without_majority():
    findings = _findings(ANNOTATED_FIXTURE)
    assert [f.rule for f in findings] == ["REPRO008"]
    finding = findings[0]
    assert finding.line == 13
    assert "self.items" in finding.message
    assert "self._lock" in finding.message
    assert "annotated" in finding.message


def test_guard_map_records_the_annotation():
    report = _analyze(ANNOTATED_FIXTURE)
    (qualname,) = report.guards
    assert qualname.endswith("Buffer")
    (guard,) = report.guards[qualname]
    assert (guard.attr, guard.lock, guard.how) == ("items", "_lock",
                                                   "annotated")
    rendered = report.render()
    assert "lock-guard map:" in rendered
    assert ".items <- self._lock [annotated]" in rendered


def test_unlocked_registry_counter_pattern_is_the_first_catch():
    # The exact shape the real MetricsRegistry had before this PR:
    # counters incremented from handler threads with the lock only
    # taken for snapshots.
    source = """\
    import threading


    class Counter:  # thread-shared
        def __init__(self):
            self._lock = threading.Lock()
            self.value = 0  # guarded-by: _lock

        def inc(self, amount=1):
            self.value += amount

        def snapshot(self):
            with self._lock:
                return self.value
    """
    findings = _findings(source)
    assert [f.rule for f in findings] == ["REPRO008"]
    assert findings[0].line == 10
    assert "self.value" in findings[0].message


def test_race_ok_waiver_suppresses_the_access():
    source = """\
    import threading


    class Gauge:  # thread-shared
        def __init__(self):
            self._lock = threading.Lock()
            self.items = []  # guarded-by: _lock

        def put(self, item):
            with self._lock:
                self.items.append(item)

        def probe(self):
            return len(self.items)  # race-ok: approximate gauge
    """
    assert _findings(source) == []


def test_holds_lock_annotation_covers_callee_bodies():
    source = """\
    import threading


    class Holder:  # thread-shared
        def __init__(self):
            self._lock = threading.Lock()
            self.items = []  # guarded-by: _lock

        def flush(self):
            with self._lock:
                self._drain()

        def _drain(self):  # holds-lock: _lock
            self.items.clear()
    """
    assert _findings(source) == []


def test_condition_alias_counts_as_holding_the_wrapped_lock():
    source = """\
    import threading


    class Queue:  # thread-shared
        def __init__(self):
            self._lock = threading.Lock()
            self.ready = threading.Condition(self._lock)
            self.items = []  # guarded-by: _lock

        def put(self, item):
            with self.ready:
                self.items.append(item)
                self.ready.notify()

        def take(self):
            with self._lock:
                return self.items.pop()
    """
    assert _findings(source) == []


def test_unknown_guard_annotation_is_itself_a_finding():
    source = """\
    import threading


    class Typo:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = []  # guarded-by: _lokc
    """
    findings = _findings(source)
    assert [f.rule for f in findings] == ["REPRO008"]
    assert "_lokc" in findings[0].message
    assert "no known lock" in findings[0].message


def test_non_thread_reachable_access_is_not_flagged():
    # No Thread targets, no thread-shared marker, no handler base: the
    # unlocked access cannot race because nothing else runs.
    source = """\
    import threading


    class Local:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = []  # guarded-by: _lock

        def mutate(self):
            self.items.append(1)
    """
    assert _findings(source) == []


# ----------------------------------------------------------------------
# REPRO009: lock ordering and blocking calls
# ----------------------------------------------------------------------
CYCLE_FIXTURE = """\
import threading


class Transfer:
    def __init__(self):
        self._alpha = threading.Lock()
        self._beta = threading.Lock()

    def forward(self):
        with self._alpha:
            with self._beta:
                pass

    def backward(self):
        with self._beta:
            with self._alpha:
                pass
"""


def test_ab_ba_cycle_is_flagged_with_both_sites():
    findings = [f for f in _findings(CYCLE_FIXTURE) if "cycle" in f.message]
    assert [f.rule for f in findings] == ["REPRO009"]
    message = findings[0].message
    assert "_alpha" in message and "_beta" in message
    # Both acquisition sites are named file:line (lines of the inner
    # `with` statements).
    assert f"{PATH}:11" in message
    assert f"{PATH}:16" in message


def test_cycle_is_caught_across_files(tmp_path):
    first = tmp_path / "a.py"
    second = tmp_path / "b.py"
    first.write_text(textwrap.dedent("""\
        import threading

        lock_a = threading.Lock()
        lock_b = threading.Lock()


        def forward():
            with lock_a:
                with lock_b:
                    pass
    """))
    second.write_text(textwrap.dedent("""\
        from a import lock_a, lock_b


        def backward():
            with lock_b:
                with lock_a:
                    pass
    """))
    report = analyze_files([first, second])
    cycles = [f for f in report.findings if "cycle" in f.message]
    assert len(cycles) == 1
    assert "lock_a" in cycles[0].message
    assert "lock_b" in cycles[0].message


def test_sleep_under_lock_is_flagged():
    source = """\
    import threading
    import time


    class Blocker:
        def __init__(self):
            self._lock = threading.Lock()

        def slow(self):
            with self._lock:
                time.sleep(0.1)
    """
    findings = _findings(source)
    assert [f.rule for f in findings] == ["REPRO009"]
    assert findings[0].line == 11
    assert "sleep" in findings[0].message


def test_lock_ok_waiver_suppresses_blocking_call():
    source = """\
    import threading
    import time


    class Blocker:
        def __init__(self):
            self._lock = threading.Lock()

        def slow(self):
            with self._lock:
                time.sleep(0.1)  # lock-ok: deliberate pacing
    """
    assert _findings(source) == []


def test_untimed_join_flagged_but_timed_join_and_str_join_are_not():
    source = """\
    import threading


    class Joiner:
        def __init__(self):
            self._lock = threading.Lock()

        def bad(self, thread):
            with self._lock:
                thread.join()

        def good(self, thread, parts):
            with self._lock:
                thread.join(1.0)
                return ", ".join(parts)
    """
    findings = _findings(source)
    assert [f.rule for f in findings] == ["REPRO009"]
    assert findings[0].line == 10
    assert "join" in findings[0].message


def test_condition_wait_releases_its_own_lock():
    # cond.wait() releases the lock it wraps, so waiting on a condition
    # under its own (aliased) lock is not a blocking call *under* it.
    source = """\
    import threading


    class Waiter:
        def __init__(self):
            self._lock = threading.Lock()
            self.ready = threading.Condition(self._lock)

        def wait_ready(self):
            with self.ready:
                self.ready.wait(0.5)
    """
    assert _findings(source) == []


# ----------------------------------------------------------------------
# Integration with the lint driver
# ----------------------------------------------------------------------
def test_run_lint_surfaces_concurrency_rules(tmp_path):
    planted = tmp_path / "planted.py"
    planted.write_text(ANNOTATED_FIXTURE)
    findings = run_lint([planted], select={"REPRO008"})
    assert [f.rule for f in findings] == ["REPRO008"]
    assert findings[0].path == str(planted)
    assert findings[0].line == 13

    # Selecting only per-file rules skips the whole-tree pass.
    assert run_lint([planted], select={"REPRO003"}) == []


def test_select_excludes_unwanted_concurrency_rule():
    report = _analyze(CYCLE_FIXTURE, select={"REPRO008"})
    assert report.findings == []
