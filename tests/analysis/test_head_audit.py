"""Sanitizer audit of the six task heads (the issue's satellite fix).

Every head over the plain BERT encoder must wire all of its parameters
into the loss.  The one *documented* exception family — encoder-owned
auxiliary heads that a task does not exercise (TAPAS cell selection /
aggregation under NLI) — must be flagged precisely, and nothing else.
"""

import numpy as np
import pytest

from repro.analysis import sanitize_tape, trace_tape
from repro.analysis.checker import CHECKED_TASKS
from repro.core import create_model
from repro.corpus.datasets import (
    build_coltype_dataset,
    build_imputation_dataset,
    build_nli_dataset,
    build_qa_dataset,
    build_retrieval_dataset,
    build_text2sql_dataset,
)
from repro.tasks import (
    BiEncoderRetriever,
    CellSelectionQA,
    ColumnTypePredictor,
    NliClassifier,
    SketchParser,
    ValueImputer,
    build_value_vocabulary_from_tables,
)


def _task_and_examples(task_name, encoder, tables, rng):
    if task_name == "qa":
        return CellSelectionQA(encoder, rng), build_qa_dataset(tables, rng)
    if task_name == "nli":
        return NliClassifier(encoder, rng), build_nli_dataset(tables, rng)
    if task_name == "imputation":
        vocabulary = build_value_vocabulary_from_tables(tables)
        return (ValueImputer(encoder, vocabulary, rng),
                build_imputation_dataset(tables, rng))
    if task_name == "coltype":
        types = ["name", "year", "city", "country"]
        return (ColumnTypePredictor(encoder, types, rng),
                build_coltype_dataset(tables))
    if task_name == "retrieval":
        return (BiEncoderRetriever(encoder, corpus=tables),
                build_retrieval_dataset(tables, rng))
    if task_name == "text2sql":
        return SketchParser(encoder, rng), build_text2sql_dataset(tables, rng)
    raise KeyError(task_name)


@pytest.mark.parametrize("task_name", CHECKED_TASKS)
def test_every_head_over_bert_is_fully_wired(task_name, tables, tokenizer,
                                             config):
    rng = np.random.default_rng(0)
    encoder = create_model("bert", tokenizer, config=config, seed=0)
    task, examples = _task_and_examples(task_name, encoder, tables, rng)
    assert examples, f"{task_name}: fixture produced no examples"
    with trace_tape() as tracer:
        loss = task.loss(examples[:4])
    report = sanitize_tape(loss, parameters=task, traced=tracer.nodes)
    assert report.by_kind("dead-parameter") == [], report.render()
    assert report.by_kind("dtype-promotion") == [], report.render()
    assert report.by_kind("non-finite") == [], report.render()


def test_tapas_under_nli_flags_only_the_unused_aux_heads(tables, tokenizer,
                                                         config):
    rng = np.random.default_rng(0)
    tapas = create_model("tapas", tokenizer, config=config, seed=0)
    task = NliClassifier(tapas, rng)
    examples = build_nli_dataset(tables, rng)
    with trace_tape() as tracer:
        loss = task.loss(examples[:4])
    report = sanitize_tape(loss, parameters=task, traced=tracer.nodes)
    dead = {finding.subject for finding in report.by_kind("dead-parameter")}
    # NLI never calls the QA heads TAPAS carries — exactly those are dead.
    assert dead == {
        "encoder.cell_selection.scorer.weight",
        "encoder.cell_selection.scorer.bias",
        "encoder.aggregation.hidden.weight",
        "encoder.aggregation.hidden.bias",
        "encoder.aggregation.output.weight",
        "encoder.aggregation.output.bias",
    }
