"""Layer-level inference agrees with real forwards; errors carry paths."""

import numpy as np
import pytest

from repro.analysis import ShapeError, ShapeSpec, infer_decoder, infer_shapes
from repro.nn import (
    Decoder,
    Embedding,
    Encoder,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Parameter,
    Tensor,
)
from repro.models.heads import CellSelectionHead, ClassificationHead, MlmHead

RNG = np.random.default_rng(0)


def _agree(module, spec, real_input, bindings):
    """Symbolic output, bound to concrete dims, must equal the real shape."""
    symbolic = infer_shapes(module, spec)
    real = module(real_input)
    assert symbolic.concrete_shape(bindings) == real.shape
    return symbolic


def test_linear_agrees_and_range_checks():
    layer = Linear(8, 5, RNG)
    _agree(layer, ShapeSpec(("B", 8)), Tensor(RNG.normal(size=(3, 8))),
           {"B": 3})
    with pytest.raises(ShapeError, match=r"head\.weight.*axis is 7"):
        infer_shapes(layer, ShapeSpec(("B", 7)), ("head", "weight"))
    with pytest.raises(ShapeError, match="dtype is int"):
        infer_shapes(layer, ShapeSpec(("B", 8), dtype="int"))


def test_embedding_agrees_and_bounds_ids():
    table = Embedding(10, 6, RNG)
    ids = ShapeSpec(("B", "T"), dtype="int", max_value=9)
    _agree(table, ids, np.array([[1, 2, 3]]), {"B": 1, "T": 3})
    overflow = ShapeSpec(("B", "T"), dtype="int", max_value=10)
    with pytest.raises(ShapeError, match="ids may reach 10.*only 10 rows"):
        infer_shapes(table, overflow)


def test_layernorm_feedforward_agree():
    norm = LayerNorm(6)
    _agree(norm, ShapeSpec(("B", "T", 6)),
           Tensor(RNG.normal(size=(2, 3, 6))), {"B": 2, "T": 3})
    ffn = FeedForward(6, 12, RNG)
    _agree(ffn, ShapeSpec(("B", "T", 6)),
           Tensor(RNG.normal(size=(2, 3, 6))), {"B": 2, "T": 3})
    with pytest.raises(ShapeError, match=r"expand"):
        infer_shapes(ffn, ShapeSpec(("B", "T", 7)))


def test_attention_self_and_cross():
    attention = MultiHeadAttention(8, 2, RNG)
    x = ShapeSpec(("B", "T", 8))
    _agree(attention, x, Tensor(RNG.normal(size=(2, 4, 8))), {"B": 2, "T": 4})
    memory = ShapeSpec(("B", "S", 8))
    out = infer_shapes(attention, (x, memory))
    assert out.shape == ("B", "T", 8)
    with pytest.raises(ShapeError, match="query batch 2 != memory batch 3"):
        infer_shapes(attention, (ShapeSpec((2, "T", 8)),
                                 ShapeSpec((3, "S", 8))))


def test_encoder_stack_agrees():
    encoder = Encoder(dim=8, num_heads=2, hidden_dim=16, num_layers=2, rng=RNG)
    _agree(encoder, ShapeSpec(("B", "T", 8)),
           Tensor(RNG.normal(size=(2, 5, 8))), {"B": 2, "T": 5})
    with pytest.raises(ShapeError, match=r"layers\.0"):
        infer_shapes(encoder, ShapeSpec(("B", "T", 9)))


def test_decoder_agrees_with_real_forward():
    decoder = Decoder(dim=8, num_heads=2, hidden_dim=16, num_layers=2, rng=RNG)
    target = ShapeSpec(("B", "T_dec", 8))
    memory = ShapeSpec(("B", "T", 8))
    symbolic = infer_decoder(decoder, target, memory)
    real = decoder(Tensor(RNG.normal(size=(2, 3, 8))),
                   Tensor(RNG.normal(size=(2, 6, 8))))
    assert symbolic.concrete_shape({"B": 2, "T_dec": 3}) == real.shape
    with pytest.raises(ShapeError, match="target, memory"):
        infer_shapes(decoder, target)


def test_heads_agree():
    mlm = MlmHead(8, Parameter(RNG.normal(size=(30, 8))), RNG)
    symbolic = infer_shapes(mlm, ShapeSpec(("B", "T", 8)))
    real = mlm(Tensor(RNG.normal(size=(2, 4, 8))))
    assert symbolic.concrete_shape({"B": 2, "T": 4}) == real.shape

    classify = ClassificationHead(8, 3, RNG)
    symbolic = infer_shapes(classify, ShapeSpec(("B", 8)))
    assert symbolic.concrete_shape({"B": 2}) == classify(
        Tensor(RNG.normal(size=(2, 8)))).shape

    select = CellSelectionHead(8, RNG)
    symbolic = infer_shapes(select, ShapeSpec(("B", "T", 8)))
    assert symbolic.concrete_shape({"B": 2, "T": 4}) == select.token_scores(
        Tensor(RNG.normal(size=(2, 4, 8)))).shape


def test_unregistered_module_reports_type():
    class Mystery(Module):
        pass

    with pytest.raises(ShapeError, match="no shape-inference rule.*Mystery"):
        infer_shapes(Mystery(), ShapeSpec(("B", 8)))
