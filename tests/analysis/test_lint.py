"""Lint rules fire on fixture snippets and stay silent on src/."""

import textwrap

from repro.analysis import RULES, lint_source, run_lint


def _findings(source, path="src/repro/example.py", select=None):
    return lint_source(textwrap.dedent(source), path, select=select)


def _rules(findings):
    return [finding.rule for finding in findings]


def test_repro001_global_rng_call_fires():
    findings = _findings("""
        import numpy as np
        x = np.random.rand(3)
    """)
    assert _rules(findings) == ["REPRO001"]


def test_repro001_factory_calls_are_allowed():
    assert _findings("""
        import numpy as np
        rng = np.random.default_rng(0)
        ss = np.random.SeedSequence(7)
    """) == []


def test_repro002_raw_data_arithmetic_outside_nn_fires():
    findings = _findings("""
        y = tensor.data * 2
    """, path="src/repro/tasks/qa.py")
    assert _rules(findings) == ["REPRO002"]
    # The same expression inside nn/ is the autograd implementation itself.
    assert _findings("""
        y = tensor.data * 2
    """, path="src/repro/nn/tensor.py") == []


def test_repro002_augassign_and_subscript_fire():
    findings = _findings("""
        tensor.data[0] += 1
    """, path="src/repro/tasks/qa.py")
    assert _rules(findings) == ["REPRO002"]


def test_repro003_mutable_default_fires():
    findings = _findings("""
        def build(items=[]):
            return items
    """)
    assert _rules(findings) == ["REPRO003"]
    assert _findings("""
        def build(items=None):
            return items
    """) == []


def test_repro004_bare_forward_in_serve_fires():
    source = """
        def run(model, batch):
            return model.forward(batch)
    """
    findings = _findings(source, path="src/repro/serve/engine.py")
    assert "REPRO004" in _rules(findings)
    # Outside serve/ the rule does not apply.
    assert "REPRO004" not in _rules(
        _findings(source, path="src/repro/tasks/qa.py"))


def test_repro004_inference_context_suppresses():
    findings = _findings("""
        def run(model, batch):
            with model.inference():
                return model.forward(batch)
    """, path="src/repro/serve/engine.py")
    assert "REPRO004" not in _rules(findings)


def test_repro005_missing_annotations_fire_in_analysis():
    source = """
        def infer(module, spec):
            return spec
    """
    findings = _findings(source, path="src/repro/analysis/infer.py")
    assert "REPRO005" in _rules(findings)
    # Private helpers and out-of-scope packages are exempt.
    assert _findings("""
        def _infer(module, spec):
            return spec
    """, path="src/repro/analysis/infer.py") == []
    assert _findings(source, path="src/repro/tasks/qa.py") == []


def test_repro005_fully_annotated_passes():
    assert _findings("""
        def infer(module: object, spec: int) -> int:
            return spec
    """, path="src/repro/analysis/infer.py") == []


def test_repro006_data_arithmetic_inside_nn_fires():
    findings = _findings("""
        y = tensor.data * 2
    """, path="src/repro/nn/layers.py")
    assert _rules(findings) == ["REPRO006"]
    findings = _findings("""
        tensor.data[0] += 1
    """, path="src/repro/nn/attention.py")
    assert _rules(findings) == ["REPRO006"]


def test_repro006_backend_seam_is_exempt():
    source = """
        y = tensor.data * 2
    """
    for seam in ("backend.py", "compile.py", "tensor.py", "optim.py"):
        assert _findings(source, path=f"src/repro/nn/{seam}") == []


def test_repro006_make_call_fires_everywhere_but_the_seam():
    source = """
        y = Tensor._make(data, parents)
    """
    assert _rules(_findings(source, path="src/repro/nn/layers.py")) == [
        "REPRO006"]
    assert _rules(_findings(source, path="src/repro/tasks/qa.py")) == [
        "REPRO006"]
    assert _findings(source, path="src/repro/nn/backend.py") == []


def test_repro007_bare_except_fires():
    findings = _findings("""
        try:
            work()
        except:
            handle()
    """)
    assert _rules(findings) == ["REPRO007"]


def test_repro007_broad_except_pass_fires():
    for caught in ("Exception", "OSError", "(ValueError, OSError)",
                   "socket.error"):
        findings = _findings(f"""
            try:
                work()
            except {caught}:
                pass
        """)
        assert _rules(findings) == ["REPRO007"], caught
    # An ellipsis body is the same silent swallow in disguise.
    findings = _findings("""
        try:
            work()
        except Exception:
            ...
    """)
    assert _rules(findings) == ["REPRO007"]


def test_repro007_shutdown_noise_allowlist_passes():
    assert _findings("""
        try:
            work()
        except (EOFError, KeyboardInterrupt):
            pass
    """) == []
    assert _findings("""
        try:
            work()
        except BrokenPipeError:
            pass
    """) == []


def test_repro007_handled_broad_except_passes():
    # A body that does something (even just logging/re-raising) is not
    # a silent swallow; the rule only polices empty handlers.
    assert _findings("""
        try:
            work()
        except OSError as error:
            log(error)
    """) == []


def test_select_filters_rules():
    source = """
        import numpy as np
        def build(items=[]):
            return np.random.rand(3)
    """
    assert set(_rules(_findings(source))) == {"REPRO001", "REPRO003"}
    assert _rules(_findings(source, select={"REPRO003"})) == ["REPRO003"]


def test_finding_renders_location_and_rule():
    finding = _findings("x = np.random.rand()")[0]
    text = str(finding)
    assert "src/repro/example.py" in text
    assert "REPRO001" in text


def test_every_rule_has_a_description():
    assert set(RULES) == {f"REPRO00{n}" for n in range(1, 10)}
    assert all(RULES.values())


def test_src_tree_is_clean():
    assert run_lint(["src"]) == []
