"""ShapeSpec semantics: symbolic dims, broadcasting, binding."""

import pytest

from repro.analysis import ShapeError, ShapeSpec, broadcast_shapes, dims_equal


def test_dims_equal_three_valued():
    assert dims_equal(3, 3) is True
    assert dims_equal(3, 4) is False
    assert dims_equal("B", "B") is True
    assert dims_equal("B", "T") is None        # could coincide at runtime
    assert dims_equal("B", 7) is None          # unknowable, never an error


def test_broadcast_symbolic_and_concrete():
    assert broadcast_shapes(("B", 1, "T", "T"), ("B", 4, "T", "T")) == \
        ("B", 4, "T", "T")
    assert broadcast_shapes((3,), ("B", "T", 3)) == ("B", "T", 3)
    # The concrete side wins an unknowable comparison.
    assert broadcast_shapes(("B", "T"), (2, "T")) == (2, "T")


def test_broadcast_provable_mismatch_raises():
    with pytest.raises(ShapeError, match="cannot broadcast"):
        broadcast_shapes(("B", 3), ("B", 4))


def test_require_last_symbolic_never_errors():
    spec = ShapeSpec(("B", "T", "D"))
    spec.require_last(48, (), what="feature")   # unknowable → allowed
    with pytest.raises(ShapeError, match="feature axis is 32"):
        ShapeSpec(("B", "T", 32)).require_last(48, (), what="feature")


def test_dtype_and_ndim_requirements():
    ids = ShapeSpec(("B", "T"), dtype="int", max_value=99)
    with pytest.raises(ShapeError, match="dtype is int"):
        ids.require_dtype("float", ("embed",))
    with pytest.raises(ShapeError, match="rank is 2"):
        ids.require_ndim(3, ())
    with pytest.raises(ValueError):
        ShapeSpec((1,), dtype="complex")


def test_bind_and_concrete_shape():
    spec = ShapeSpec(("B", "T", 48))
    assert spec.bind({"B": 2}).shape == (2, "T", 48)
    assert spec.concrete_shape({"B": 2, "T": 17}) == (2, 17, 48)
    with pytest.raises(ShapeError, match="unbound symbolic dims"):
        spec.concrete_shape({"B": 2})


def test_with_shape_drops_value_bound():
    ids = ShapeSpec(("B", "T"), dtype="int", max_value=99)
    out = ids.with_shape(("B", "T", 16))
    assert out.dtype == "float" and out.max_value is None


def test_error_renders_dotted_path():
    error = ShapeError("boom", ("encoder", "layers", "1", "attention"))
    assert str(error) == "encoder.layers.1.attention: boom"
