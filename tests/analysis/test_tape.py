"""Tape sanitizer: planted wiring bugs must be diagnosed by name."""

import numpy as np
import pytest

from repro.analysis import (
    OpCounter,
    TapeTracer,
    reachable_from,
    sanitize_tape,
    trace_tape,
)
from repro.nn import Linear, Tensor
from repro.nn.tensor import set_tape_hook
from repro.runtime import MetricsRegistry

RNG = np.random.default_rng(0)


def _loss_with_dead_branch():
    """A two-layer graph where one Linear never feeds the loss."""
    live = Linear(4, 2, RNG)
    dead = Linear(4, 2, RNG)
    x = Tensor(RNG.normal(size=(3, 4)))
    loss = live(x).sum()
    names = [(f"live.{n}", p) for n, p in live.named_parameters()]
    names += [(f"dead.{n}", p) for n, p in dead.named_parameters()]
    return loss, names


def test_planted_dead_parameter_is_found():
    loss, names = _loss_with_dead_branch()
    report = sanitize_tape(loss, parameters=names)
    dead = report.by_kind("dead-parameter")
    assert {finding.subject for finding in dead} == \
        {"dead.weight", "dead.bias"}
    assert "trains to noise" in dead[0].message
    assert not report.ok
    assert report.checked_parameters == 4


def test_clean_graph_reports_clean():
    live = Linear(4, 2, RNG)
    loss = live(Tensor(RNG.normal(size=(3, 4)))).sum()
    report = sanitize_tape(loss, parameters=live)
    assert report.ok
    assert "clean" in report.render()


def test_planted_float64_leak_is_found():
    x = Tensor(np.asarray(RNG.normal(size=(3, 4)), dtype=np.float32),
               requires_grad=True)
    # Multiplying by a float64 array silently promotes the product.
    leaked = x * np.ones((3, 4), dtype=np.float64)
    loss = leaked.sum()
    report = sanitize_tape(loss)
    promotions = report.by_kind("dtype-promotion")
    assert promotions, report.render()
    assert "float64" in promotions[0].message


def test_untouched_op_needs_a_trace():
    with trace_tape() as tracer:
        x = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        wasted = (x * 3.0).sum()       # computed, never used
        loss = (x + 1.0).sum()
    report = sanitize_tape(loss, traced=tracer.nodes)
    untouched = report.by_kind("untouched-op")
    assert untouched
    assert "never feeds the loss" in untouched[0].message
    # Without the trace the same graph looks clean.
    assert sanitize_tape(loss).by_kind("untouched-op") == []
    del wasted


def test_fanout_risk_on_reused_exp():
    x = Tensor(RNG.normal(size=(4,)), requires_grad=True)
    e = x.exp()
    loss = (e + e * 2.0 + e * 3.0).sum()
    report = sanitize_tape(loss)
    fanout = report.by_kind("fanout-risk")
    assert fanout and fanout[0].subject.startswith("exp")
    assert "NaN amplification" in fanout[0].message


def test_non_finite_forward_value():
    x = Tensor(np.array([1.0, np.inf]), requires_grad=True)
    report = sanitize_tape((x * 2.0).sum())
    assert report.by_kind("non-finite")


def test_reachable_from_walks_parents():
    x = Tensor(RNG.normal(size=(2,)), requires_grad=True)
    loss = ((x * 2.0) + 1.0).sum()
    reachable = reachable_from(loss)
    assert id(x) in reachable and id(loss) in reachable
    # x, the two wrapped constants, mul, add, sum
    assert len(reachable) == 6


def test_trace_tape_restores_previous_hook():
    outer = OpCounter()
    previous = set_tape_hook(outer)
    try:
        with trace_tape() as tracer:
            (Tensor(np.ones(2), requires_grad=True) * 2.0).sum()
        assert tracer.forward_ops == 2
        assert len(tracer.nodes) == 2
        # The outer hook is live again and keeps counting.
        (Tensor(np.ones(2), requires_grad=True) * 2.0).sum()
        assert outer.forward_ops == 2
    finally:
        set_tape_hook(previous)


def test_emit_routes_through_metrics_registry():
    registry = MetricsRegistry()
    loss, names = _loss_with_dead_branch()
    report = sanitize_tape(loss, parameters=names)
    report.emit(registry)
    assert registry.counter("sanitize.runs").value == 1
    assert registry.counter("sanitize.findings").value == len(report.findings)


def test_tracer_is_an_op_counter():
    tracer = TapeTracer()
    assert isinstance(tracer, OpCounter)
    assert tracer.forward_ops == 0 and tracer.nodes == []
