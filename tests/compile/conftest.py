"""Shared fixtures for the compiled-executor equivalence suite.

Mirrors the data-parallel differential harness: everything is seeded and
session-scoped so eager and compiled runs start from identical corpora,
tokenizers and model initializations — the tests compare logits, grads
and checkpoint archives at the byte level.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig
from repro.text import train_tokenizer

FAMILIES = ("bert", "tapas", "tabert", "turl", "mate", "tabbie", "tuta")


def corpus_texts(tables):
    texts = []
    for table in tables:
        texts.append(table.context.text())
        texts.append(" ".join(table.header))
        for _, _, cell in table.iter_cells():
            texts.append(cell.text())
    return texts


@pytest.fixture(scope="session")
def kb():
    return KnowledgeBase(seed=0)


@pytest.fixture(scope="session")
def wiki_tables(kb):
    return generate_wiki_corpus(kb, 16, seed=0)


@pytest.fixture(scope="session")
def tokenizer(wiki_tables):
    return train_tokenizer(corpus_texts(wiki_tables), vocab_size=700)


@pytest.fixture(scope="session")
def config(tokenizer, kb):
    return EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=16, num_heads=2, num_layers=1,
        hidden_dim=32, max_position=128, num_entities=kb.num_entities,
    )


@pytest.fixture
def make_model(tokenizer, config):
    def build(name: str, seed: int = 0):
        return create_model(name, tokenizer, config=config, seed=seed)
    return build
