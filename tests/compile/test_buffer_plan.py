"""Property tests for the buffer planner's no-aliasing invariant.

:func:`repro.nn.compile.plan_buffers` assigns physical buffer ids to
live intervals.  The safety contract: two intervals sharing a buffer
must have equal keys (shape + dtype) and disjoint inclusive lifetimes —
a replayed op writing its output may never clobber an intermediate some
later op still reads.
"""

from hypothesis import given, strategies as st

from repro.nn.compile import plan_buffers


@st.composite
def interval_sets(draw):
    """Random interval lists in program order (non-decreasing starts)."""
    count = draw(st.integers(min_value=0, max_value=40))
    starts = sorted(
        draw(st.lists(st.integers(min_value=0, max_value=60),
                      min_size=count, max_size=count)))
    intervals = []
    for start in starts:
        end = start + draw(st.integers(min_value=0, max_value=20))
        key = draw(st.sampled_from(
            [((4,), "f8"), ((4, 8), "f8"), ((2, 2), "f4"), ((16,), "f8")]))
        intervals.append((start, end, key))
    return intervals


@given(interval_sets())
def test_shared_buffers_never_alias_live_intervals(intervals):
    assignment = plan_buffers(intervals)
    assert len(assignment) == len(intervals)
    by_buffer: dict[int, list[tuple[int, int, object]]] = {}
    for interval, buffer_id in zip(intervals, assignment):
        by_buffer.setdefault(buffer_id, []).append(interval)
    for users in by_buffer.values():
        keys = {key for _, _, key in users}
        assert len(keys) == 1, "buffer shared across shape/dtype keys"
        # Inclusive lifetimes must be pairwise disjoint: sorted by start,
        # each interval must begin strictly after the previous one ends.
        users.sort()
        for (_, prev_end, _), (start, _, _) in zip(users, users[1:]):
            assert start > prev_end, (
                f"aliased live intervals: one ends at {prev_end}, "
                f"next starts at {start}")


@given(interval_sets())
def test_plan_is_deterministic_and_dense(intervals):
    first = plan_buffers(intervals)
    assert plan_buffers(intervals) == first
    # Ids are allocated densely from zero, never exceeding one buffer
    # per interval.
    assert all(0 <= b < max(1, len(intervals)) for b in first)


def test_disjoint_same_key_intervals_share_one_buffer():
    key = ((8,), "f8")
    intervals = [(0, 1, key), (2, 3, key), (4, 5, key)]
    assert len(set(plan_buffers(intervals))) == 1


def test_inclusive_end_blocks_reuse_at_same_tick():
    # An interval freed at t is reusable from t+1 on, not at t itself.
    key = ((8,), "f8")
    assignment = plan_buffers([(0, 2, key), (2, 4, key)])
    assert assignment[0] != assignment[1]
