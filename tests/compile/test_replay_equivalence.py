"""Eager vs compiled replay must agree bit-for-bit, logits to checkpoints.

The compiled executor's contract is exact: recording a step is an
ordinary eager step observed by a passive recorder, and replays re-run
the same backend ops in the same order on the same arrays.  These tests
enforce the contract at the strongest level available — raw array bytes
for inference logits and gradients, and whole checkpoint archives for
training runs — across every golden-fixture model family.
"""

import numpy as np
import pytest

from repro.parallel import FixedClock
from repro.pretrain import Pretrainer, PretrainConfig

from .conftest import FAMILIES


def same_bytes(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and a.dtype == b.dtype \
        and a.tobytes() == b.tobytes()


def hidden_bytes(model, tables):
    batch, _ = model.batch(tables)
    with model.inference():
        return model(batch).data


def compiled_config(**overrides) -> PretrainConfig:
    settings = dict(steps=8, batch_size=4, seed=0, compile=True)
    settings.update(overrides)
    return PretrainConfig(**settings)


class TestCompiledInference:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_hidden_states_bitwise_equal_eager(self, name, make_model,
                                               wiki_tables):
        model = make_model(name)
        first, second = wiki_tables[:4], wiki_tables[4:10]
        eager_first = hidden_bytes(model, first)
        eager_second = hidden_bytes(model, second)

        model.enable_compiled_inference()
        # Recording pass (cache miss) and replay pass (cache hit) must
        # both reproduce the eager forward exactly, per batch signature.
        assert same_bytes(hidden_bytes(model, first), eager_first)
        assert same_bytes(hidden_bytes(model, first), eager_first)
        assert same_bytes(hidden_bytes(model, second), eager_second)
        assert same_bytes(hidden_bytes(model, second), eager_second)

        cache = model._compiled_inference.cache
        assert len(cache) == 2  # one program per padded-batch signature
        for executor in cache._executors.values():
            # Everything batch-dependent must be bound per replay, not
            # frozen into the program at record time.
            assert not executor.program.baked_arrays

    @pytest.mark.parametrize("name", FAMILIES)
    def test_replay_sees_live_weight_updates(self, name, make_model,
                                             wiki_tables):
        model = make_model(name)
        tables = wiki_tables[:4]
        eager = hidden_bytes(model, tables)
        model.enable_compiled_inference()
        hidden_bytes(model, tables)  # record

        parameter = next(iter(model.parameters()))
        original = parameter.data.copy()
        parameter.data += 0.25
        assert not same_bytes(hidden_bytes(model, tables), eager)
        parameter.data[...] = original
        assert same_bytes(hidden_bytes(model, tables), eager)


class TestCompiledTraining:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_replayed_gradients_bitwise_equal_eager(self, name, make_model,
                                                    wiki_tables):
        # A 4-table corpus with batch_size=4 keeps the padded batch
        # signature constant, so every step after the first is a
        # guaranteed cache hit — the gradients compared here come from
        # the replayed backward sweep, not from recording.
        corpus = wiki_tables[:4]
        grads = {}
        for compile_flag in (False, True):
            trainer = Pretrainer(
                make_model(name),
                compiled_config(steps=4, compile=compile_flag),
                clock=FixedClock())
            trainer.train(corpus)
            if compile_flag:
                assert len(trainer._programs) >= 1
                assert len(trainer._programs) < trainer.config.steps
            grads[compile_flag] = [
                None if p.grad is None else p.grad.copy()
                for p in trainer.optimizer.parameters]
            grads[f"history-{compile_flag}"] = [
                r.to_dict() for r in trainer.history]
        assert grads["history-False"] == grads["history-True"]
        assert len(grads[False]) == len(grads[True])
        for eager, replayed in zip(grads[False], grads[True]):
            if eager is None:
                assert replayed is None
            else:
                assert same_bytes(eager, replayed)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_checkpoint_bytes_equal_eager(self, name, make_model,
                                          wiki_tables, tmp_path):
        archives = {}
        for compile_flag in (False, True):
            trainer = Pretrainer(make_model(name),
                                 compiled_config(compile=compile_flag),
                                 clock=FixedClock())
            trainer.train(wiki_tables)
            path = trainer.save_checkpoint(
                tmp_path / f"{name}-compile{int(compile_flag)}")
            archives[compile_flag] = path.read_bytes()
        assert archives[False] == archives[True], (
            f"{name}: compiled checkpoint differs from eager")

    @pytest.mark.parametrize("name", ("bert", "turl"))
    def test_sanitize_preflight_leaves_bytes_identical(
            self, name, make_model, wiki_tables, tmp_path):
        # turl exercises the MLM+MER combined objective graph.
        plain = Pretrainer(make_model(name), compiled_config(),
                           clock=FixedClock())
        plain.train(wiki_tables)
        expected = plain.save_checkpoint(tmp_path / "plain").read_bytes()

        sanitized = Pretrainer(make_model(name), compiled_config(),
                               clock=FixedClock())
        sanitized.sanitize_check(wiki_tables)
        sanitized.train(wiki_tables)
        actual = sanitized.save_checkpoint(tmp_path / "san").read_bytes()
        assert actual == expected

    def test_eager_and_compiled_checkpoints_resume_interchangeably(
            self, make_model, wiki_tables, tmp_path):
        # ``compile`` is pure execution strategy, not numeric identity:
        # a compiled run's snapshot resumes under an eager trainer (and
        # vice versa) without tripping the config-compatibility check.
        recorded = Pretrainer(make_model("bert"),
                              compiled_config(checkpoint_every=4),
                              clock=FixedClock())
        snapshot_dir = tmp_path / "snapshots"
        recorded.train(wiki_tables, checkpoint_dir=snapshot_dir)
        expected = recorded.save_checkpoint(tmp_path / "full").read_bytes()

        resumed = Pretrainer(make_model("bert"),
                             compiled_config(checkpoint_every=4,
                                             compile=False),
                             clock=FixedClock())
        assert resumed.resume(snapshot_dir / "ckpt-00000004.npz") == 4
        resumed.train(wiki_tables)
        assert resumed.save_checkpoint(
            tmp_path / "resumed").read_bytes() == expected
