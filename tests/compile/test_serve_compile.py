"""InferenceEngine(compile=True) must serve bit-identical predictions."""

import numpy as np
import pytest

from repro.corpus import NLIExample
from repro.serve import InferenceEngine, ServeConfig
from repro.tasks import NliClassifier


@pytest.fixture
def make_nli(make_model):
    def build():
        return NliClassifier(make_model("bert"), np.random.default_rng(0))
    return build


def run_engine(nli, tables, compile_flag):
    engine = InferenceEngine({"nli": nli}, ServeConfig(max_batch=4),
                             compile=compile_flag)
    submissions = [("nli", NLIExample(tables[i % 6], f"statement {i}", 0))
                   for i in range(12)]
    responses = engine.process(submissions)
    return engine, [(r.prediction.label, r.prediction.score)
                    for r in responses]


class TestServeCompile:
    def test_compiled_predictions_equal_eager(self, make_nli, wiki_tables):
        _, eager = run_engine(make_nli(), wiki_tables, False)
        engine, compiled = run_engine(make_nli(), wiki_tables, True)
        assert compiled == eager
        # The compiled path was actually exercised: the encoder holds
        # recorded programs for the batch signatures it served.
        encoder = engine.predictors["nli"].encoder
        assert encoder._compiled_inference is not None
        assert len(encoder._compiled_inference.cache) >= 1

    def test_compile_off_leaves_encoder_eager(self, make_nli, wiki_tables):
        engine, _ = run_engine(make_nli(), wiki_tables, False)
        assert engine.predictors["nli"].encoder._compiled_inference is None

    def test_constructor_override_beats_config(self, make_nli):
        engine = InferenceEngine({"nli": make_nli()},
                                 ServeConfig(compile=True), compile=False)
        assert engine.config.compile is False
