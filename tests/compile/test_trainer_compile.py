"""Compile-mode trainer wiring: guards, cache seeding, CLI surface."""

import numpy as np
import pytest
from dataclasses import replace as dataclass_replace

from repro.cli import main
from repro.core import create_model
from repro.parallel import ParallelConfig
from repro.pretrain import Pretrainer, PretrainConfig


class TestGuards:
    def test_compile_rejects_parallel(self):
        with pytest.raises(ValueError, match="incompatible with data-parallel"):
            PretrainConfig(compile=True,
                           parallel=ParallelConfig(workers=2, shard_size=1))

    def test_compile_rejects_dropout(self, tokenizer, config):
        leaky = dataclass_replace(config, dropout=0.1)
        model = create_model("bert", tokenizer, config=leaky, seed=0)
        with pytest.raises(ValueError, match="dropout"):
            Pretrainer(model, PretrainConfig(compile=True))

    def test_eager_trainer_builds_no_program_cache(self, make_model):
        trainer = Pretrainer(make_model("bert"), PretrainConfig(steps=2))
        assert trainer._programs is None


class TestSanitizeSeeding:
    def test_sanitize_records_the_first_step_program(self, make_model,
                                                     wiki_tables):
        trainer = Pretrainer(
            make_model("bert"),
            PretrainConfig(steps=1, batch_size=4, seed=0, compile=True))
        trainer.sanitize_check(wiki_tables)
        assert len(trainer._programs) == 1
        seeded = next(iter(trainer._programs._executors.values()))

        # The sampling RNG was restored, so the first real step re-draws
        # the sanitize batch, hits the seeded program, and records
        # nothing new: the cache still holds the *same* executor (a miss
        # would have replaced it with a fresh recording).
        trainer.train(wiki_tables)
        assert len(trainer._programs) == 1
        assert next(iter(trainer._programs._executors.values())) is seeded

    def test_sanitize_report_matches_eager_mode(self, make_model,
                                                wiki_tables):
        reports = {}
        for compile_flag in (False, True):
            trainer = Pretrainer(
                make_model("bert"),
                PretrainConfig(steps=1, batch_size=4, seed=0,
                               compile=compile_flag))
            reports[compile_flag] = trainer.sanitize_check(wiki_tables)
        render = lambda report: [(f.kind, f.subject) for f in
                                 report.findings]
        assert render(reports[False]) == render(reports[True])


class TestCli:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("compile-corpus")
        assert main(["corpus", "--kind", "wiki", "--size", "8",
                     "--out", str(out)]) == 0
        return out

    def test_pretrain_compile_flag_runs(self, corpus_dir, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(["pretrain", str(corpus_dir), "--model", "bert",
                     "--steps", "2", "--dim", "16", "--layers", "1",
                     "--compile", "--out", str(bundle)]) == 0
        assert (bundle / "weights.npz").exists()
        assert "loss" in capsys.readouterr().out

    def test_pretrain_compile_rejects_workers(self, corpus_dir, tmp_path,
                                              capsys):
        with pytest.raises(SystemExit):
            main(["pretrain", str(corpus_dir), "--model", "bert",
                  "--steps", "2", "--compile", "--workers", "2",
                  "--out", str(tmp_path / "b")])
        assert "--compile" in capsys.readouterr().err
