"""Fixtures for the runtime concurrency tests.

``lock_sanitizer`` wraps ``threading.Lock``/``RLock`` for the duration
of one test and *fails the test* on any lock-order inversion the code
under test produced — the runtime counterpart of the static REPRO009
pass.
"""

import pytest

from repro.analysis import LockSanitizer


@pytest.fixture
def lock_sanitizer():
    sanitizer = LockSanitizer()
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
    assert sanitizer.violations == [], sanitizer.render_report()
