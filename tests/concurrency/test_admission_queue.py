"""AdmissionQueue shutdown semantics: the lost-wakeup regression.

The original ``close`` path set the stop flag and notified *without
coordinating with the waiter's predicate*: a close landing between the
dispatcher's emptiness probe and its ``wait`` was lost, and the waiter
slept out its full timeout on a dead queue.  ``wait_for_work`` now
checks ``queued-or-stopping`` under the same lock ``close`` holds while
notifying, so the planted orderings below are deterministic.
"""

import threading
import time

from repro.serve.frontend import AdmissionQueue, ServeTicket


def _ticket(request_id=0):
    return ServeTicket(request_id, "imputation", object(), "affinity",
                       arrived=0.0, deadline_at=None)


def test_close_before_wait_returns_immediately():
    # The planted race, made deterministic: close lands first, then the
    # waiter arrives.  The old implementation slept the full timeout.
    queue = AdmissionQueue(4)
    queue.close()
    start = time.monotonic()
    assert queue.wait_for_work(30.0) is True
    assert time.monotonic() - start < 5.0


def test_concurrent_close_wakes_a_blocked_waiter():
    queue = AdmissionQueue(4)
    woke = threading.Event()

    def waiter():
        queue.wait_for_work(30.0)
        woke.set()

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    time.sleep(0.05)
    queue.close()
    assert woke.wait(5.0)
    thread.join(5.0)


def test_admission_wakes_a_blocked_waiter():
    queue = AdmissionQueue(4)
    results = []

    def waiter():
        results.append(queue.wait_for_work(30.0))

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert queue.admit(_ticket())
    thread.join(5.0)
    assert results == [True]


def test_wait_times_out_false_on_an_idle_open_queue():
    queue = AdmissionQueue(4)
    assert queue.wait_for_work(0.01) is False


def test_queued_work_short_circuits_the_wait():
    queue = AdmissionQueue(4)
    assert queue.admit(_ticket())
    assert queue.wait_for_work(0.0) is True


def test_closed_queue_sheds_admissions_until_reopened():
    queue = AdmissionQueue(4)
    queue.close()
    assert queue.admit(_ticket()) is False
    assert len(queue) == 0
    queue.reopen()
    assert queue.admit(_ticket()) is True
    assert len(queue) == 1


def test_queue_hammer_under_sanitizer(lock_sanitizer):
    # Locks created after install are wrapped; the producer/consumer
    # hammer must finish with zero lock-order violations.
    queue = AdmissionQueue(1024)
    popped = []
    popped_lock = threading.Lock()

    def producer(base):
        for i in range(50):
            queue.admit(_ticket(base + i))

    def consumer():
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with popped_lock:
                if len(popped) >= 200:
                    return
            taken = queue.pop_any(8)
            if taken:
                with popped_lock:
                    popped.extend(taken)
            else:
                queue.wait_for_work(0.01)

    threads = ([threading.Thread(target=producer, args=(base * 50,))
                for base in range(4)]
               + [threading.Thread(target=consumer) for _ in range(2)])
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(15.0)
    assert len(popped) == 200
    assert sorted(t.request_id for t in popped) == list(range(200))
