"""EncodingCache hammered from 8 threads under the lock sanitizer.

The cache sits directly under ``ThreadingHTTPServer`` handler threads
in single-process serving, so this is the satellite stress test: no
lock-order violations, no lost counter updates, and every lookup
accounted for as exactly one hit or miss.
"""

import threading

import numpy as np
import pytest

from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig, TableBert
from repro.serve.cache import EncodingCache
from repro.text import train_tokenizer

THREADS = 8
ROUNDS = 3


@pytest.fixture(scope="module")
def hammer_tables():
    return generate_wiki_corpus(KnowledgeBase(seed=0), 4, seed=0)


@pytest.fixture(scope="module")
def hammer_encoder(hammer_tables):
    texts = []
    for table in hammer_tables:
        texts.append(table.context.text())
        texts.append(" ".join(table.header))
        texts.extend(cell.text() for _, _, cell in table.iter_cells())
    tokenizer = train_tokenizer(texts, vocab_size=500)
    config = EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=16, num_heads=2,
        num_layers=1, hidden_dim=32, max_position=160, num_entities=64,
    )
    return TableBert(config, tokenizer, np.random.default_rng(0))


def test_eight_thread_hammer_is_clean(lock_sanitizer, hammer_encoder,
                                      hammer_tables):
    cache = EncodingCache(max_entries=64)
    contexts = [None] * len(hammer_tables)
    errors = []
    barrier = threading.Barrier(THREADS)

    def worker(_index):
        try:
            barrier.wait(30.0)
            for _ in range(ROUNDS):
                _serialized, features = cache.features_for(
                    hammer_encoder, hammer_tables, contexts)
                hidden = cache.hidden_for(hammer_encoder, features)
                assert len(hidden) == len(hammer_tables)
                for state, feats in zip(hidden, features):
                    assert state.shape[0] == len(feats)
        except Exception as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120.0)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []

    stats = cache.stats()
    lookups = THREADS * ROUNDS * len(hammer_tables)
    # Every lookup was exactly one hit or one miss — drifting totals
    # were the unlocked-counter symptom this suite exists to prevent.
    assert stats["hits"] + stats["misses"] == lookups
    # All threads share one model fingerprint, so at most one miss per
    # distinct table can ever be *stored*; concurrent first-round misses
    # are bounded by thread count.
    assert len(hammer_tables) <= stats["misses"] <= THREADS * len(hammer_tables)
    assert stats["entries"] == len(hammer_tables)

    # Deterministic results: a fresh single-threaded pass agrees with
    # what the hammered cache returns now.
    _serialized, features = cache.features_for(
        hammer_encoder, hammer_tables, contexts)
    again = cache.hidden_for(hammer_encoder, features)
    solo = EncodingCache(max_entries=64)
    _serialized, solo_features = solo.features_for(
        hammer_encoder, hammer_tables, contexts)
    expected = solo.hidden_for(hammer_encoder, solo_features)
    for got, want in zip(again, expected):
        np.testing.assert_array_equal(got, want)
