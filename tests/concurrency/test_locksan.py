"""The runtime lock sanitizer: wrapping, inversion detection, reporting."""

import threading

import pytest

from repro.analysis import LockSanitizer, SanitizerError
from repro.runtime import MetricsRegistry, using_registry


def test_planted_inversion_is_caught_with_witness():
    with LockSanitizer() as sanitizer:
        alpha = threading.Lock()
        beta = threading.Lock()
        with alpha:
            with beta:
                pass
        with beta:
            with alpha:
                pass
    assert len(sanitizer.violations) == 1
    violation = sanitizer.violations[0]
    lock_a, lock_b = violation["locks"]
    assert lock_a != lock_b
    # Both creation-site keys point into this test file, and the
    # witness stacks capture where each order was taken.
    assert "test_locksan" in lock_a and "test_locksan" in lock_b
    assert violation["frames"] and violation["prior_frames"]
    assert any("test_locksan" in frame for frame in violation["frames"])
    report = sanitizer.render_report()
    assert "lock-order inversion" in report
    assert "1 violation(s)" in report


def test_consistent_order_produces_no_violation():
    with LockSanitizer() as sanitizer:
        alpha = threading.Lock()
        beta = threading.Lock()
        for _ in range(3):
            with alpha:
                with beta:
                    pass
    assert sanitizer.violations == []
    assert sanitizer.acquisitions >= 6


def test_reentrant_rlock_is_not_an_edge():
    with LockSanitizer() as sanitizer:
        lock = threading.RLock()
        with lock:
            with lock:
                pass
    assert sanitizer.violations == []


def test_inversion_across_threads_is_caught():
    with LockSanitizer() as sanitizer:
        alpha = threading.Lock()
        beta = threading.Lock()

        def forward():
            with alpha:
                with beta:
                    pass

        def backward():
            with beta:
                with alpha:
                    pass

        first = threading.Thread(target=forward)
        first.start()
        first.join(5.0)
        second = threading.Thread(target=backward)
        second.start()
        second.join(5.0)
    assert len(sanitizer.violations) == 1
    violation = sanitizer.violations[0]
    assert violation["thread"] != violation["prior_thread"]


def test_long_hold_is_a_warning_not_a_violation():
    with LockSanitizer(long_hold_seconds=0.0) as sanitizer:
        lock = threading.Lock()
        with lock:
            pass
    assert sanitizer.violations == []
    assert sanitizer.long_holds >= 1
    assert any(w["kind"] == "long_hold" for w in sanitizer.warnings)
    assert "warning" in sanitizer.render_report()


def test_condition_on_wrapped_lock_round_trips():
    with LockSanitizer() as sanitizer:
        lock = threading.Lock()
        condition = threading.Condition(lock)
        seen = []

        def waiter():
            with condition:
                while not seen:
                    condition.wait(5.0)
                seen.append("woke")

        thread = threading.Thread(target=waiter)
        thread.start()
        with condition:
            seen.append("posted")
            condition.notify()
        thread.join(5.0)
        assert not thread.is_alive()
    assert seen == ["posted", "woke"]
    assert sanitizer.violations == []


def test_uninstall_restores_factories_and_pushes_counters():
    real_lock, real_rlock = threading.Lock, threading.RLock
    registry = MetricsRegistry()
    with using_registry(registry):
        with LockSanitizer() as sanitizer:
            assert threading.Lock is not real_lock
            with threading.Lock():
                pass
        assert threading.Lock is real_lock
        assert threading.RLock is real_rlock
    assert not sanitizer.installed
    assert registry.counter("concurrency.acquisitions").value >= 1
    assert registry.counter("concurrency.lock_inversions").value == 0


def test_double_install_raises():
    sanitizer = LockSanitizer()
    sanitizer.install()
    try:
        with pytest.raises(SanitizerError):
            sanitizer.install()
        other = LockSanitizer()
        with pytest.raises(SanitizerError):
            other.install()
    finally:
        sanitizer.uninstall()


def test_violation_emits_concurrency_event():
    from repro.runtime import InMemorySink

    registry = MetricsRegistry()
    sink = InMemorySink()
    registry.add_sink(sink)
    with using_registry(registry):
        with LockSanitizer():
            alpha = threading.Lock()
            beta = threading.Lock()
            with alpha:
                with beta:
                    pass
            with beta:
                with alpha:
                    pass
    events = sink.of_kind("concurrency")
    assert len(events) == 1
    assert events[0]["violation"] == "lock_order_inversion"
