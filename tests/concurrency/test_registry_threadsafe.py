"""MetricsRegistry under concurrency: exact totals, consistent snapshots."""

import threading

from repro.runtime import InMemorySink, MetricsRegistry

THREADS = 8
ROUNDS = 400


def _run_threads(worker):
    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
    assert not any(thread.is_alive() for thread in threads)


def test_concurrent_counter_increments_are_exact(lock_sanitizer):
    registry = MetricsRegistry()

    def worker(_index):
        counter = registry.counter("hammer.count")
        for _ in range(ROUNDS):
            counter.inc()

    _run_threads(worker)
    assert registry.counter("hammer.count").value == THREADS * ROUNDS


def test_concurrent_observations_are_exact(lock_sanitizer):
    registry = MetricsRegistry()

    def worker(index):
        timer = registry.timer("hammer.seconds")
        histogram = registry.histogram("hammer.sizes")
        for round_number in range(ROUNDS):
            timer.observe(0.001)
            histogram.observe(float(index * ROUNDS + round_number))

    _run_threads(worker)
    timer = registry.timer("hammer.seconds")
    histogram = registry.histogram("hammer.sizes")
    assert timer.count == THREADS * ROUNDS
    assert histogram.count == THREADS * ROUNDS
    assert histogram.min_value == 0.0
    assert histogram.max_value == float(THREADS * ROUNDS - 1)


def test_snapshot_is_a_consistent_cut(lock_sanitizer):
    # Writers bump two counters in lockstep under their own barrier-free
    # loop; a snapshot taken mid-flight must never see the pair drift by
    # more than the number of writer threads (each can be between its
    # two increments, but never past the registry lock mid-read).
    registry = MetricsRegistry()
    stop = threading.Event()

    def writer(_index):
        left = registry.counter("pair.left")
        right = registry.counter("pair.right")
        while not stop.is_set():
            left.inc()
            right.inc()

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(50):
            entries = {e["name"]: e["value"]
                       for e in registry.snapshot() if "value" in e}
            left = entries.get("pair.left", 0)
            right = entries.get("pair.right", 0)
            assert abs(left - right) <= len(threads)
    finally:
        stop.set()
        for thread in threads:
            thread.join(10.0)


def test_concurrent_emit_reaches_every_sink_exactly_once(lock_sanitizer):
    registry = MetricsRegistry()
    sink = InMemorySink()
    registry.add_sink(sink)

    def worker(index):
        for round_number in range(ROUNDS):
            registry.emit({"kind": "hammer", "who": index,
                           "round": round_number})

    _run_threads(worker)
    events = sink.of_kind("hammer")
    assert len(events) == THREADS * ROUNDS
    assert {(e["who"], e["round"]) for e in events} == {
        (who, round_number)
        for who in range(THREADS) for round_number in range(ROUNDS)}


def test_get_or_create_race_returns_one_instrument(lock_sanitizer):
    registry = MetricsRegistry()
    created = []
    barrier = threading.Barrier(THREADS)

    def worker(_index):
        barrier.wait(10.0)
        created.append(registry.counter("contended.create"))

    _run_threads(worker)
    assert len({id(counter) for counter in created}) == 1
