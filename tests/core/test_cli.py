"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("corpus")
    assert main(["corpus", "--kind", "wiki", "--size", "8",
                 "--out", str(out)]) == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("corpus", "encode", "pretrain", "behavioral"):
            args = parser.parse_args(
                [command] + (["--out", "x"] if command == "corpus" else
                             ["dummy"] + (["--out", "x"]
                                          if command == "pretrain" else [])))
            assert args.command == command


class TestCorpusCommand:
    def test_writes_csvs_and_manifest(self, corpus_dir):
        csvs = list(corpus_dir.glob("*.csv"))
        assert len(csvs) == 8
        manifest = json.loads((corpus_dir / "manifest.json").read_text())
        assert len(manifest) == 8
        assert all("table_id" in entry for entry in manifest)

    def test_git_kind(self, tmp_path):
        assert main(["corpus", "--kind", "git", "--size", "3",
                     "--out", str(tmp_path / "git")]) == 0
        assert len(list((tmp_path / "git").glob("*.csv"))) == 3

    def test_infobox_kind(self, tmp_path):
        assert main(["corpus", "--kind", "infobox", "--size", "3",
                     "--out", str(tmp_path / "ib")]) == 0
        assert len(list((tmp_path / "ib").glob("*.csv"))) == 3

    def test_shards_dry_run_prints_fingerprints(self, tmp_path, capsys):
        argv = ["corpus", "--kind", "wiki", "--size", "10",
                "--shard-tables", "4", "--shards"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert "stream_fingerprint=" in lines[0]
        assert len(lines) == 1 + 3          # header + ceil(10/4) shards
        assert "shard    2: tables=2" in lines[3]
        assert not list(tmp_path.iterdir())  # dry run writes nothing
        # Determinism: a second invocation prints identical fingerprints.
        assert main(argv) == 0
        assert capsys.readouterr().out == out

    def test_shard_tables_does_not_change_count(self, tmp_path):
        assert main(["corpus", "--kind", "wiki", "--size", "5",
                     "--shard-tables", "2",
                     "--out", str(tmp_path / "sharded")]) == 0
        assert len(list((tmp_path / "sharded").glob("*.csv"))) == 5


class TestEncodeCommand:
    def test_encode_prints_summary(self, corpus_dir, capsys):
        table = sorted(corpus_dir.glob("*.csv"))[0]
        assert main(["encode", str(table), "--model", "bert"]) == 0
        out = capsys.readouterr().out
        assert "table embedding" in out
        assert "top-3 cells" in out

    def test_unknown_model_rejected(self, corpus_dir):
        table = sorted(corpus_dir.glob("*.csv"))[0]
        with pytest.raises(SystemExit):
            main(["encode", str(table), "--model", "gpt9"])


class TestPretrainCommand:
    def test_pretrain_saves_bundle(self, corpus_dir, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(["pretrain", str(corpus_dir), "--model", "bert",
                     "--steps", "3", "--dim", "16", "--layers", "1",
                     "--out", str(bundle)]) == 0
        assert (bundle / "weights.npz").exists()
        assert (bundle / "tokenizer.json").exists()
        assert "loss" in capsys.readouterr().out

    def test_encode_with_bundle(self, corpus_dir, tmp_path, capsys):
        bundle = tmp_path / "bundle2"
        main(["pretrain", str(corpus_dir), "--model", "bert", "--steps", "2",
              "--dim", "16", "--layers", "1", "--out", str(bundle)])
        table = sorted(corpus_dir.glob("*.csv"))[0]
        assert main(["encode", str(table), "--model", str(bundle)]) == 0
        assert "bert" in capsys.readouterr().out

    def test_empty_corpus_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["pretrain", str(tmp_path), "--out", str(tmp_path / "b")])

    def test_streamed_pretrain_saves_bundle(self, tmp_path, capsys):
        bundle = tmp_path / "stream-bundle"
        assert main(["pretrain", "wiki", "--stream", "--corpus-size", "12",
                     "--shard-tables", "4", "--model", "bert",
                     "--steps", "3", "--dim", "16", "--layers", "1",
                     "--vocab-size", "400", "--out", str(bundle)]) == 0
        assert (bundle / "weights.npz").exists()
        out = capsys.readouterr().out
        assert "streamed wiki corpus (12 tables)" in out

    def test_streamed_equals_materialized_checkpoints(self, tmp_path):
        """The CLI-level differential: --materialize must not move a
        checkpoint byte relative to the streamed run."""
        snapshots = {}
        for mode, extra in (("stream", []), ("mat", ["--materialize"])):
            ckpts = tmp_path / f"ckpt-{mode}"
            assert main(["pretrain", "wiki", "--stream",
                         "--corpus-size", "12", "--shard-tables", "4",
                         "--model", "bert", "--steps", "4",
                         "--dim", "16", "--layers", "1",
                         "--vocab-size", "400", "--fixed-clock",
                         "--checkpoint-dir", str(ckpts),
                         "--checkpoint-every", "4",
                         "--out", str(tmp_path / f"b-{mode}")] + extra) == 0
            snapshots[mode] = (ckpts / "ckpt-00000004.npz").read_bytes()
        assert snapshots["stream"] == snapshots["mat"]


class TestBehavioralCommand:
    def test_report_printed(self, corpus_dir, capsys):
        code = main(["behavioral", str(corpus_dir), "--model", "tapas"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[INV]" in out and "[MFT]" in out


class TestProfileCommand:
    @pytest.fixture(scope="class")
    def big_corpus_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("profile-corpus")
        assert main(["corpus", "--kind", "wiki", "--size", "12",
                     "--out", str(out)]) == 0
        return out

    def test_profile_prints_op_table_and_writes_metrics(self, big_corpus_dir,
                                                        tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        assert main(["profile", str(big_corpus_dir), "--model", "bert",
                     "--steps", "2", "--epochs", "1", "--dim", "16",
                     "--layers", "1", "--vocab-size", "500",
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "tape profile (per-op)" in out
        assert "matmul" in out
        events = [json.loads(line)
                  for line in metrics.read_text().splitlines()]
        kinds = {event["kind"] for event in events}
        assert {"train_step", "profile_op", "pipeline_run"} <= kinds

    def test_profile_rejects_small_corpus(self, corpus_dir):
        with pytest.raises(SystemExit):
            main(["profile", str(corpus_dir)])


class TestOperatorErrors:
    """Bad paths and corrupt artifacts exit 2 with a one-line message."""

    def _assert_fails_cleanly(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1

    def test_pretrain_missing_corpus(self, tmp_path, capsys):
        self._assert_fails_cleanly(
            ["pretrain", str(tmp_path / "nope"), "--out", str(tmp_path / "b")],
            capsys)

    def test_corpus_without_out_or_shards(self, capsys):
        self._assert_fails_cleanly(["corpus", "--kind", "wiki"], capsys)

    def test_corpus_zero_size(self, tmp_path, capsys):
        self._assert_fails_cleanly(
            ["corpus", "--size", "0", "--out", str(tmp_path / "x")], capsys)

    def test_stream_with_unknown_kind(self, tmp_path, capsys):
        self._assert_fails_cleanly(
            ["pretrain", "parquet", "--stream", "--steps", "2",
             "--out", str(tmp_path / "b")], capsys)

    def test_materialize_without_stream(self, corpus_dir, tmp_path, capsys):
        self._assert_fails_cleanly(
            ["pretrain", str(corpus_dir), "--materialize", "--steps", "2",
             "--out", str(tmp_path / "b")], capsys)

    def test_materialize_infinite_stream(self, tmp_path, capsys):
        self._assert_fails_cleanly(
            ["pretrain", "wiki", "--stream", "--corpus-size", "0",
             "--materialize", "--steps", "2", "--out", str(tmp_path / "b")],
            capsys)

    def test_encode_missing_table(self, tmp_path, capsys):
        self._assert_fails_cleanly(["encode", str(tmp_path / "nope.csv")],
                                   capsys)

    def test_profile_missing_corpus(self, tmp_path, capsys):
        self._assert_fails_cleanly(["profile", str(tmp_path / "nope")],
                                   capsys)

    def test_pretrain_missing_resume_path(self, corpus_dir, tmp_path, capsys):
        self._assert_fails_cleanly(
            ["pretrain", str(corpus_dir), "--steps", "2",
             "--resume", str(tmp_path / "nope.npz"),
             "--out", str(tmp_path / "b")], capsys)

    def test_encode_corrupt_bundle(self, corpus_dir, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(["pretrain", str(corpus_dir), "--model", "bert",
                     "--steps", "2", "--dim", "16", "--layers", "1",
                     "--out", str(bundle)]) == 0
        weights = bundle / "weights.npz"
        weights.write_bytes(weights.read_bytes()[:40])
        table = sorted(corpus_dir.glob("*.csv"))[0]
        capsys.readouterr()
        self._assert_fails_cleanly(
            ["encode", str(table), "--model", str(bundle)], capsys)


class TestCheckpointResumeCli:
    def test_checkpoint_dir_and_resume(self, corpus_dir, tmp_path, capsys):
        ckpts = tmp_path / "ckpts"
        common = ["pretrain", str(corpus_dir), "--model", "bert",
                  "--steps", "6", "--dim", "16", "--layers", "1"]
        assert main(common + ["--checkpoint-dir", str(ckpts),
                              "--checkpoint-every", "3",
                              "--out", str(tmp_path / "b1")]) == 0
        snapshots = sorted(p.name for p in ckpts.glob("ckpt-*.npz"))
        assert snapshots == ["ckpt-00000003.npz", "ckpt-00000006.npz"]
        assert all((ckpts / f"{name}.manifest.json").exists()
                   for name in snapshots)

        assert main(common + ["--resume", str(ckpts / "ckpt-00000003.npz"),
                              "--out", str(tmp_path / "b2")]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out

        import numpy as np
        first = np.load(tmp_path / "b1" / "weights.npz")
        second = np.load(tmp_path / "b2" / "weights.npz")
        assert all(np.array_equal(first[name], second[name])
                   for name in first.files)

    def test_resume_from_directory_picks_newest(self, corpus_dir, tmp_path,
                                                capsys):
        ckpts = tmp_path / "ckpts"
        common = ["pretrain", str(corpus_dir), "--model", "bert",
                  "--steps", "4", "--dim", "16", "--layers", "1"]
        assert main(common + ["--checkpoint-dir", str(ckpts),
                              "--checkpoint-every", "2",
                              "--out", str(tmp_path / "b1")]) == 0
        assert main(common + ["--resume", str(ckpts),
                              "--out", str(tmp_path / "b2")]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "nothing to train" in out


class TestPretrainMetricsOut:
    def test_pretrain_writes_metrics_artifact(self, corpus_dir, tmp_path):
        metrics = tmp_path / "pretrain.jsonl"
        assert main(["pretrain", str(corpus_dir), "--model", "bert",
                     "--steps", "2", "--dim", "16", "--layers", "1",
                     "--out", str(tmp_path / "bundle"),
                     "--metrics-out", str(metrics)]) == 0
        events = [json.loads(line)
                  for line in metrics.read_text().splitlines()]
        assert len(events) == 2
        assert all(e["kind"] == "train_step" and e["source"] == "pretrain"
                   for e in events)
