"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("corpus")
    assert main(["corpus", "--kind", "wiki", "--size", "8",
                 "--out", str(out)]) == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("corpus", "encode", "pretrain", "behavioral"):
            args = parser.parse_args(
                [command] + (["--out", "x"] if command == "corpus" else
                             ["dummy"] + (["--out", "x"]
                                          if command == "pretrain" else [])))
            assert args.command == command


class TestCorpusCommand:
    def test_writes_csvs_and_manifest(self, corpus_dir):
        csvs = list(corpus_dir.glob("*.csv"))
        assert len(csvs) == 8
        manifest = json.loads((corpus_dir / "manifest.json").read_text())
        assert len(manifest) == 8
        assert all("table_id" in entry for entry in manifest)

    def test_git_kind(self, tmp_path):
        assert main(["corpus", "--kind", "git", "--size", "3",
                     "--out", str(tmp_path / "git")]) == 0
        assert len(list((tmp_path / "git").glob("*.csv"))) == 3


class TestEncodeCommand:
    def test_encode_prints_summary(self, corpus_dir, capsys):
        table = sorted(corpus_dir.glob("*.csv"))[0]
        assert main(["encode", str(table), "--model", "bert"]) == 0
        out = capsys.readouterr().out
        assert "table embedding" in out
        assert "top-3 cells" in out

    def test_unknown_model_rejected(self, corpus_dir):
        table = sorted(corpus_dir.glob("*.csv"))[0]
        with pytest.raises(SystemExit):
            main(["encode", str(table), "--model", "gpt9"])


class TestPretrainCommand:
    def test_pretrain_saves_bundle(self, corpus_dir, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(["pretrain", str(corpus_dir), "--model", "bert",
                     "--steps", "3", "--dim", "16", "--layers", "1",
                     "--out", str(bundle)]) == 0
        assert (bundle / "weights.npz").exists()
        assert (bundle / "tokenizer.json").exists()
        assert "loss" in capsys.readouterr().out

    def test_encode_with_bundle(self, corpus_dir, tmp_path, capsys):
        bundle = tmp_path / "bundle2"
        main(["pretrain", str(corpus_dir), "--model", "bert", "--steps", "2",
              "--dim", "16", "--layers", "1", "--out", str(bundle)])
        table = sorted(corpus_dir.glob("*.csv"))[0]
        assert main(["encode", str(table), "--model", str(bundle)]) == 0
        assert "bert" in capsys.readouterr().out

    def test_empty_corpus_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["pretrain", str(tmp_path), "--out", str(tmp_path / "b")])


class TestBehavioralCommand:
    def test_report_printed(self, corpus_dir, capsys):
        code = main(["behavioral", str(corpus_dir), "--model", "tapas"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[INV]" in out and "[MFT]" in out


class TestProfileCommand:
    @pytest.fixture(scope="class")
    def big_corpus_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("profile-corpus")
        assert main(["corpus", "--kind", "wiki", "--size", "12",
                     "--out", str(out)]) == 0
        return out

    def test_profile_prints_op_table_and_writes_metrics(self, big_corpus_dir,
                                                        tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        assert main(["profile", str(big_corpus_dir), "--model", "bert",
                     "--steps", "2", "--epochs", "1", "--dim", "16",
                     "--layers", "1", "--vocab-size", "500",
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "tape profile (per-op)" in out
        assert "matmul" in out
        events = [json.loads(line)
                  for line in metrics.read_text().splitlines()]
        kinds = {event["kind"] for event in events}
        assert {"train_step", "profile_op", "pipeline_run"} <= kinds

    def test_profile_rejects_small_corpus(self, corpus_dir):
        with pytest.raises(SystemExit):
            main(["profile", str(corpus_dir)])


class TestPretrainMetricsOut:
    def test_pretrain_writes_metrics_artifact(self, corpus_dir, tmp_path):
        metrics = tmp_path / "pretrain.jsonl"
        assert main(["pretrain", str(corpus_dir), "--model", "bert",
                     "--steps", "2", "--dim", "16", "--layers", "1",
                     "--out", str(tmp_path / "bundle"),
                     "--metrics-out", str(metrics)]) == 0
        events = [json.loads(line)
                  for line in metrics.read_text().splitlines()]
        assert len(events) == 2
        assert all(e["kind"] == "train_step" and e["source"] == "pretrain"
                   for e in events)
