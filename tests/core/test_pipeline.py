"""Tests for the Fig. 1 pretrain→fine-tune pipeline."""

import pytest

from repro.core import build_tokenizer_for_tables, run_imputation_pipeline
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig
from repro.pretrain import PretrainConfig
from repro.tasks import FinetuneConfig


@pytest.fixture(scope="module")
def corpus():
    return generate_wiki_corpus(KnowledgeBase(seed=0), 40, seed=0)


@pytest.fixture(scope="module")
def tokenizer(corpus):
    return build_tokenizer_for_tables(corpus, vocab_size=700)


@pytest.fixture(scope="module")
def config(tokenizer):
    return EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16, num_heads=2,
                         num_layers=1, hidden_dim=32, max_position=128)


FAST_PRETRAIN = PretrainConfig(steps=15, batch_size=6, learning_rate=3e-3)
FAST_FINETUNE = FinetuneConfig(epochs=5, batch_size=8, learning_rate=3e-3)


class TestPipeline:
    def test_small_corpus_rejected(self, corpus, tokenizer, config):
        with pytest.raises(ValueError):
            run_imputation_pipeline(corpus[:5], tokenizer=tokenizer,
                                    config=config)

    def test_pretrained_run_records_history(self, corpus, tokenizer, config):
        result = run_imputation_pipeline(
            corpus, model_name="bert", pretrained=True, tokenizer=tokenizer,
            config=config, pretrain_config=FAST_PRETRAIN,
            finetune_config=FAST_FINETUNE)
        assert result.pretrained
        assert len(result.pretrain_history) == FAST_PRETRAIN.steps
        assert result.finetune_history
        assert 0.0 <= result.test_metrics["accuracy"] <= 1.0

    def test_scratch_run_skips_pretraining(self, corpus, tokenizer, config):
        result = run_imputation_pipeline(
            corpus, model_name="bert", pretrained=False, tokenizer=tokenizer,
            config=config, finetune_config=FAST_FINETUNE)
        assert result.pretrain_history == []

    def test_summary_readable(self, corpus, tokenizer, config):
        result = run_imputation_pipeline(
            corpus, model_name="bert", pretrained=False, tokenizer=tokenizer,
            config=config, finetune_config=FAST_FINETUNE)
        assert "bert" in result.summary()
        assert "from-scratch" in result.summary()
