"""Tests for the model registry and pretrained bundles."""

import numpy as np
import pytest

from repro.core import (
    build_tokenizer_for_tables,
    create_model,
    load_pretrained,
    save_pretrained,
    text_corpus_from_tables,
)
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig


@pytest.fixture(scope="module")
def tables():
    return generate_wiki_corpus(KnowledgeBase(seed=0), 10, seed=0)


@pytest.fixture(scope="module")
def tokenizer(tables):
    return build_tokenizer_for_tables(tables, vocab_size=600)


@pytest.fixture(scope="module")
def config(tokenizer):
    return EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16, num_heads=2,
                         num_layers=1, hidden_dim=32, max_position=128,
                         num_entities=200)


class TestTextCorpus:
    def test_covers_headers_and_cells(self, tables):
        texts = text_corpus_from_tables(tables)
        joined = " ".join(texts)
        assert tables[0].header[0] in joined
        assert tables[0].cell(0, 0).text() in joined


class TestCreateModel:
    def test_every_registered_model_constructible(self, tokenizer, config):
        from repro.models import MODEL_CLASSES
        for name in MODEL_CLASSES:
            model = create_model(name, tokenizer, config=config)
            assert model.model_name == name

    def test_unknown_name_rejected(self, tokenizer, config):
        with pytest.raises(KeyError):
            create_model("gpt-17", tokenizer, config=config)

    def test_vocab_mismatch_rejected(self, tokenizer):
        bad = EncoderConfig(vocab_size=7)
        with pytest.raises(ValueError):
            create_model("bert", tokenizer, config=bad)

    def test_default_config_matches_tokenizer(self, tokenizer):
        model = create_model("bert", tokenizer)
        assert model.config.vocab_size == len(tokenizer.vocab)

    def test_kwargs_forwarded(self, tokenizer, config):
        model = create_model("tabert", tokenizer, config=config, snapshot_rows=5)
        assert model.snapshot_rows == 5

    def test_seed_reproducibility(self, tokenizer, config, tables):
        a = create_model("tapas", tokenizer, config=config, seed=7)
        b = create_model("tapas", tokenizer, config=config, seed=7)
        np.testing.assert_array_equal(
            a.encode(tables[0]).table_embedding,
            b.encode(tables[0]).table_embedding)


class TestBundles:
    @pytest.mark.parametrize("name", ["bert", "tapas", "turl", "mate"])
    def test_roundtrip_identical_encodings(self, name, tokenizer, config,
                                           tables, tmp_path):
        model = create_model(name, tokenizer, config=config, seed=3)
        save_pretrained(model, tmp_path / name)
        loaded = load_pretrained(tmp_path / name)
        np.testing.assert_allclose(
            model.encode(tables[0]).table_embedding,
            loaded.encode(tables[0]).table_embedding)

    def test_kwargs_survive_roundtrip(self, tokenizer, config, tmp_path):
        model = create_model("tabert", tokenizer, config=config,
                             snapshot_rows=4)
        save_pretrained(model, tmp_path / "tabert")
        loaded = load_pretrained(tmp_path / "tabert")
        assert loaded.snapshot_rows == 4

    def test_loaded_model_in_eval_mode(self, tokenizer, config, tmp_path):
        model = create_model("bert", tokenizer, config=config)
        save_pretrained(model, tmp_path / "m")
        assert not load_pretrained(tmp_path / "m").training

    def test_bundle_files_present(self, tokenizer, config, tmp_path):
        model = create_model("bert", tokenizer, config=config)
        directory = save_pretrained(model, tmp_path / "m")
        assert (directory / "weights.npz").exists()
        assert (directory / "config.json").exists()
        assert (directory / "tokenizer.json").exists()


class TestInitMetadata:
    def test_create_model_stamps_metadata(self, tokenizer, config):
        model = create_model("tabert", tokenizer, config=config, seed=9,
                            snapshot_rows=5)
        assert model.init_metadata.seed == 9
        assert model.init_metadata.kwargs == {"snapshot_rows": 5}

    def test_unstamped_module_has_empty_metadata(self, tokenizer, config):
        from repro.models import MODEL_CLASSES

        model = MODEL_CLASSES["bert"](config, tokenizer,
                                      np.random.default_rng(0))
        assert model.init_metadata.seed == 0
        assert model.init_metadata.kwargs == {}

    def test_setter_rejects_wrong_type(self, tokenizer, config):
        model = create_model("bert", tokenizer, config=config)
        with pytest.raises(TypeError):
            model.init_metadata = {"seed": 1}

    def test_metadata_dict_round_trip(self):
        from repro.nn import InitMetadata

        metadata = InitMetadata(seed=4, kwargs={"snapshot_rows": 2})
        assert InitMetadata.from_dict(metadata.to_dict()) == metadata


class TestBundleFormatVersion:
    def test_bundle_stamped_with_format_version(self, tokenizer, config,
                                                tmp_path):
        import json

        from repro.core import BUNDLE_FORMAT_VERSION

        model = create_model("bert", tokenizer, config=config)
        directory = save_pretrained(model, tmp_path / "m")
        metadata = json.loads((directory / "config.json").read_text())
        assert metadata["format_version"] == BUNDLE_FORMAT_VERSION

    def test_unknown_format_version_rejected(self, tokenizer, config,
                                             tmp_path):
        import json

        model = create_model("bert", tokenizer, config=config)
        directory = save_pretrained(model, tmp_path / "m")
        path = directory / "config.json"
        metadata = json.loads(path.read_text())
        metadata["format_version"] = 999
        path.write_text(json.dumps(metadata))
        with pytest.raises(ValueError, match="format_version"):
            load_pretrained(directory)

    def test_legacy_bundle_without_version_loads(self, tokenizer, config,
                                                 tmp_path):
        import json

        model = create_model("tabert", tokenizer, config=config,
                             snapshot_rows=4)
        directory = save_pretrained(model, tmp_path / "m")
        path = directory / "config.json"
        metadata = json.loads(path.read_text())
        del metadata["format_version"]
        path.write_text(json.dumps(metadata))
        loaded = load_pretrained(directory)
        assert loaded.snapshot_rows == 4
        assert loaded.init_metadata.kwargs == {"snapshot_rows": 4}
