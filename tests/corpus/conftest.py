"""Shared fixtures for the streaming-corpus differential harness.

Everything is seeded and session-scoped, mirroring the data-parallel
suite: the differential tests compare checkpoint *bytes* between
streamed and materialized runs, so each run must start from an identical
tokenizer and model initialization.  The tokenizer is trained on the
stream's bounded head prefix — the same prefix both consumption modes
see.
"""

import pytest

from repro.core import create_model
from repro.corpus import KnowledgeBase, open_stream
from repro.models import EncoderConfig
from repro.text import train_tokenizer

#: Shared stream geometry: 16 tables in 4-table shards.
STREAM_SIZE = 16
SHARD_TABLES = 4


def corpus_texts(tables):
    texts = []
    for table in tables:
        texts.append(table.context.text())
        texts.append(" ".join(table.header))
        for _, _, cell in table.iter_cells():
            texts.append(cell.text())
    return texts


@pytest.fixture(scope="session")
def kb():
    return KnowledgeBase(seed=0)


def make_stream(kind: str, kb, size=STREAM_SIZE, seed=0,
                shard_tables=SHARD_TABLES):
    return open_stream(kind, size=size, seed=seed,
                       shard_tables=shard_tables, kb=kb)


@pytest.fixture(scope="session")
def stream_factory(kb):
    """Build a fresh stream per call — streams are stateless, but tests
    that mutate windows or resume mid-stream want their own objects."""
    def build(kind="wiki", size=STREAM_SIZE, seed=0,
              shard_tables=SHARD_TABLES):
        return make_stream(kind, kb, size=size, seed=seed,
                           shard_tables=shard_tables)
    return build


@pytest.fixture(scope="session")
def tokenizer(kb):
    # One vocabulary over the union of all three generator prefixes so a
    # single session-scoped model config serves every differential case.
    texts = []
    for kind in ("wiki", "git", "infobox"):
        texts.extend(corpus_texts(make_stream(kind, kb).materialize()))
    return train_tokenizer(texts, vocab_size=900)


@pytest.fixture(scope="session")
def config(tokenizer, kb):
    return EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=16, num_heads=2, num_layers=1,
        hidden_dim=32, max_position=128, num_entities=kb.num_entities,
    )


@pytest.fixture
def make_model(tokenizer, config):
    def build(name: str = "bert", seed: int = 0):
        return create_model(name, tokenizer, config=config, seed=seed)
    return build
