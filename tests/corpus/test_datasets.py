"""Tests for the downstream-task dataset builders."""

import numpy as np
import pytest

from repro.corpus import (
    KnowledgeBase,
    build_coltype_dataset,
    build_imputation_dataset,
    build_nli_dataset,
    build_qa_dataset,
    build_retrieval_dataset,
    build_text2sql_dataset,
    generate_git_corpus,
    generate_wiki_corpus,
    question_from_query,
)
from repro.sql import Aggregate, execute
from repro.tables import Table


@pytest.fixture(scope="module")
def wiki_tables():
    return generate_wiki_corpus(KnowledgeBase(seed=0), 12, seed=0)


@pytest.fixture(scope="module")
def git_tables():
    return generate_git_corpus(12, seed=0)


class TestImputation:
    def test_blanked_cell_is_empty(self, wiki_tables):
        rng = np.random.default_rng(0)
        for ex in build_imputation_dataset(wiki_tables, rng):
            assert ex.table.cell(ex.row, ex.column).is_empty
            assert ex.answer_text

    def test_answer_matches_original(self, wiki_tables):
        rng = np.random.default_rng(1)
        by_id = {t.table_id: t for t in wiki_tables}
        for ex in build_imputation_dataset(wiki_tables, rng):
            original = by_id[ex.table.table_id]
            assert original.cell(ex.row, ex.column).text() == ex.answer_text

    def test_text_cells_only_default(self, wiki_tables):
        rng = np.random.default_rng(2)
        by_id = {t.table_id: t for t in wiki_tables}
        for ex in build_imputation_dataset(wiki_tables, rng):
            assert not by_id[ex.table.table_id].cell(ex.row, ex.column).is_numeric

    def test_numeric_cells_allowed_when_requested(self, git_tables):
        rng = np.random.default_rng(3)
        examples = build_imputation_dataset(git_tables, rng, text_cells_only=False)
        by_id = {t.table_id: t for t in git_tables}
        assert any(by_id[e.table.table_id].cell(e.row, e.column).is_numeric
                   for e in examples)

    def test_entity_ids_preserved(self, wiki_tables):
        rng = np.random.default_rng(4)
        examples = build_imputation_dataset(wiki_tables, rng)
        assert any(e.answer_entity_id is not None for e in examples)

    def test_per_table_respected(self, wiki_tables):
        rng = np.random.default_rng(5)
        examples = build_imputation_dataset(wiki_tables, rng, per_table=1)
        ids = [e.table.table_id for e in examples]
        assert all(ids.count(i) <= 1 for i in set(ids))


class TestQA:
    def test_coordinates_point_at_answers(self, wiki_tables):
        rng = np.random.default_rng(0)
        for ex in build_qa_dataset(wiki_tables, rng):
            values = {ex.table.cell(r, c).text() for r, c in ex.answer_coordinates}
            denot = {str(int(v)) if isinstance(v, float) and v.is_integer()
                     else str(v) for v in ex.denotation}
            assert values == denot or values >= denot

    def test_denotation_matches_executor(self, wiki_tables):
        rng = np.random.default_rng(1)
        for ex in build_qa_dataset(wiki_tables, rng):
            assert tuple(execute(ex.sql, ex.table)) == ex.denotation

    def test_questions_templated(self, wiki_tables):
        rng = np.random.default_rng(2)
        examples = build_qa_dataset(wiki_tables, rng)
        assert examples
        for ex in examples:
            assert ex.question.startswith("what is the")
            assert ex.question.endswith("?")

    def test_nonempty_answers_only(self, wiki_tables):
        rng = np.random.default_rng(3)
        for ex in build_qa_dataset(wiki_tables, rng):
            assert ex.answer_coordinates


class TestQuestionTemplates:
    def test_count_phrase(self, wiki_tables):
        rng = np.random.default_rng(0)
        examples = build_text2sql_dataset(wiki_tables, rng, per_table=4)
        count_examples = [e for e in examples if e.sql.aggregate is Aggregate.COUNT]
        assert count_examples
        for ex in count_examples:
            assert ex.question.startswith("how many")

    def test_min_max_phrases(self, git_tables):
        rng = np.random.default_rng(1)
        examples = build_text2sql_dataset(git_tables, rng, per_table=6)
        phrases = {Aggregate.MIN: "lowest", Aggregate.MAX: "highest"}
        for ex in examples:
            if ex.sql.aggregate in phrases:
                assert phrases[ex.sql.aggregate] in ex.question


class TestNLI:
    def test_balanced_labels(self, wiki_tables):
        rng = np.random.default_rng(0)
        examples = build_nli_dataset(wiki_tables, rng)
        labels = [e.label for e in examples]
        assert 0 in labels and 1 in labels

    def test_entailed_statement_names_true_value(self, wiki_tables):
        rng = np.random.default_rng(1)
        for ex in build_nli_dataset(wiki_tables, rng):
            if ex.label == 1:
                # The statement's final token(s) must appear in the table.
                cell_texts = {cell.text() for _, _, cell in ex.table.iter_cells()}
                assert any(ex.statement.endswith(text) for text in cell_texts if text)

    def test_refuted_statement_contradicts_table(self, wiki_tables):
        rng = np.random.default_rng(2)
        examples = build_nli_dataset(wiki_tables, rng)
        refuted = [e for e in examples if e.label == 0]
        assert refuted
        for ex in refuted:
            assert "is" in ex.statement

    def test_tiny_tables_skipped(self):
        table = Table(["a", "b"], [["x", "y"]], table_id="tiny")
        assert build_nli_dataset([table], np.random.default_rng(0)) == []


class TestRetrieval:
    def test_every_query_has_positive(self, wiki_tables):
        rng = np.random.default_rng(0)
        table_ids = {t.table_id for t in wiki_tables}
        examples = build_retrieval_dataset(wiki_tables, rng)
        assert examples
        for ex in examples:
            assert ex.positive_table_id in table_ids
            assert ex.query.strip()

    def test_query_mentions_table_content(self, wiki_tables):
        rng = np.random.default_rng(1)
        by_id = {t.table_id: t for t in wiki_tables}
        for ex in build_retrieval_dataset(wiki_tables, rng):
            table = by_id[ex.positive_table_id]
            table_text = " ".join(
                [table.context.title]
                + [cell.text() for _, _, cell in table.iter_cells()]
            )
            assert any(word in table_text for word in ex.query.split())


class TestColumnType:
    def test_label_is_hidden_header(self, wiki_tables):
        for ex in build_coltype_dataset(wiki_tables):
            assert ex.table.header[ex.column] == ""
            assert ex.label

    def test_other_headers_kept(self, wiki_tables):
        examples = build_coltype_dataset(wiki_tables)
        multi_col = [e for e in examples if e.table.num_columns > 1]
        assert any(any(h for h in e.table.header) for e in multi_col)

    def test_headerless_columns_skipped(self):
        table = Table(["", "name"], [["1", "x"]], table_id="t")
        examples = build_coltype_dataset([table])
        assert len(examples) == 1
        assert examples[0].label == "name"


class TestText2Sql:
    def test_denotation_matches_executor(self, wiki_tables):
        rng = np.random.default_rng(0)
        for ex in build_text2sql_dataset(wiki_tables, rng):
            assert execute(ex.sql, ex.table) == ex.denotation

    def test_sketch_constraints(self, wiki_tables):
        rng = np.random.default_rng(1)
        for ex in build_text2sql_dataset(wiki_tables, rng):
            assert len(ex.sql.conditions) <= 1

    def test_question_round_trip(self, wiki_tables):
        rng = np.random.default_rng(2)
        for ex in build_text2sql_dataset(wiki_tables, rng):
            assert ex.question == question_from_query(ex.sql)


class TestBuilderEdgeCases:
    """Degenerate inputs: empty corpora, size-1 corpora, seed stability."""

    BUILDERS = (build_imputation_dataset, build_qa_dataset,
                build_nli_dataset, build_retrieval_dataset,
                build_text2sql_dataset)

    def test_empty_corpus_yields_no_examples(self):
        for builder in self.BUILDERS:
            assert builder([], np.random.default_rng(0)) == []
        assert build_coltype_dataset([]) == []

    def test_size_one_corpus(self, wiki_tables):
        corpus = wiki_tables[:1]
        for builder in self.BUILDERS:
            examples = builder(corpus, np.random.default_rng(0))
            assert all(ex.table.table_id == corpus[0].table_id
                       for ex in examples if hasattr(ex, "table"))
        retrieval = build_retrieval_dataset(corpus, np.random.default_rng(0))
        assert all(ex.positive_table_id == corpus[0].table_id
                   for ex in retrieval)

    def test_seed_stability_across_calls(self, wiki_tables):
        """The same seeded generator drives byte-equal example sets."""
        for builder in self.BUILDERS:
            first = builder(wiki_tables, np.random.default_rng(7))
            second = builder(wiki_tables, np.random.default_rng(7))
            assert first == second, builder.__name__

    def test_different_seeds_change_sampled_cells(self, wiki_tables):
        a = build_imputation_dataset(wiki_tables, np.random.default_rng(0))
        b = build_imputation_dataset(wiki_tables, np.random.default_rng(1))
        assert [(e.row, e.column) for e in a] != [(e.row, e.column)
                                                 for e in b]

    def test_imputation_skips_tables_without_candidates(self):
        numeric_only = Table(["n"], [["1"], ["2"]], table_id="num")
        examples = build_imputation_dataset([numeric_only],
                                            np.random.default_rng(0))
        assert examples == []
