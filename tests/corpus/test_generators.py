"""Tests for the WikiTables- and GitTables-style corpus generators."""

import numpy as np
import pytest

from repro.corpus import (
    GitTablesConfig,
    KnowledgeBase,
    WikiTablesConfig,
    generate_git_corpus,
    generate_git_table,
    generate_wiki_corpus,
    generate_wiki_table,
)


@pytest.fixture(scope="module")
def kb():
    return KnowledgeBase(seed=0)


class TestWikiTables:
    def test_table_rooted_in_domain(self, kb):
        rng = np.random.default_rng(0)
        table = generate_wiki_table(kb, rng, domain="countries")
        assert table.header[0] == "country"
        assert table.context.section == "countries"
        assert table.context.title

    def test_subject_cells_carry_entity_ids(self, kb):
        rng = np.random.default_rng(1)
        table = generate_wiki_table(kb, rng, domain="films")
        for r in range(table.num_rows):
            assert table.cell(r, 0).entity_id is not None

    def test_facts_consistent_with_kb(self, kb):
        rng = np.random.default_rng(2)
        table = generate_wiki_table(kb, rng, domain="countries")
        by_country = {r["country"].name: r for r in kb.domain_records("countries")}
        for r in range(table.num_rows):
            record = by_country[table.cell(r, 0).value]
            for c in range(1, table.num_columns):
                attr = table.header[c]
                expected = record[attr]
                actual = table.cell(r, c)
                if hasattr(expected, "name"):
                    assert actual.value == expected.name
                    assert actual.entity_id == expected.entity_id
                else:
                    assert actual.value == expected

    def test_row_and_attribute_bounds_respected(self, kb):
        config = WikiTablesConfig(min_rows=2, max_rows=3,
                                  min_attributes=1, max_attributes=2)
        rng = np.random.default_rng(3)
        for _ in range(10):
            table = generate_wiki_table(kb, rng, config=config)
            assert 2 <= table.num_rows <= 3
            assert 2 <= table.num_columns <= 3  # subject + 1..2 attrs

    def test_no_duplicate_subject_rows(self, kb):
        rng = np.random.default_rng(4)
        for _ in range(10):
            table = generate_wiki_table(kb, rng)
            subjects = [table.cell(r, 0).value for r in range(table.num_rows)]
            assert len(subjects) == len(set(subjects))

    def test_corpus_ids_and_determinism(self, kb):
        corpus_a = generate_wiki_corpus(kb, 5, seed=9)
        corpus_b = generate_wiki_corpus(kb, 5, seed=9)
        assert [t.table_id for t in corpus_a] == [f"wiki-{i}" for i in range(5)]
        assert all(a == b for a, b in zip(corpus_a, corpus_b))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WikiTablesConfig(min_rows=0)
        with pytest.raises(ValueError):
            WikiTablesConfig(min_attributes=3, max_attributes=2)


class TestGitTables:
    def test_flavor_respected(self):
        rng = np.random.default_rng(0)
        table = generate_git_table(rng, flavor="hr")
        assert table.num_columns >= 3

    def test_unknown_flavor_rejected(self):
        with pytest.raises(KeyError):
            generate_git_table(np.random.default_rng(0), flavor="bogus")

    def test_headerless_probability_one(self):
        config = GitTablesConfig(headerless_probability=1.0)
        rng = np.random.default_rng(1)
        table = generate_git_table(rng, config=config)
        assert all(h == "" for h in table.header)

    def test_missing_cells_generated(self):
        config = GitTablesConfig(missing_cell_probability=0.5, min_rows=8, max_rows=8)
        rng = np.random.default_rng(2)
        table = generate_git_table(rng, config=config)
        assert table.empty_fraction() > 0

    def test_no_missing_when_probability_zero(self):
        config = GitTablesConfig(missing_cell_probability=0.0,
                                 headerless_probability=0.0)
        rng = np.random.default_rng(3)
        for _ in range(5):
            table = generate_git_table(rng, config=config)
            assert table.empty_fraction() == 0.0

    def test_numeric_heavier_than_wiki(self, kb):
        git = generate_git_corpus(20, seed=5)
        wiki = generate_wiki_corpus(kb, 20, seed=5)
        git_numeric = np.mean([t.numeric_fraction() for t in git])
        wiki_numeric = np.mean([t.numeric_fraction() for t in wiki])
        assert git_numeric > wiki_numeric

    def test_corpus_determinism(self):
        a = generate_git_corpus(5, seed=11)
        b = generate_git_corpus(5, seed=11)
        assert all(x == y for x, y in zip(a, b))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GitTablesConfig(missing_cell_probability=1.5)
        with pytest.raises(ValueError):
            GitTablesConfig(min_rows=5, max_rows=2)
