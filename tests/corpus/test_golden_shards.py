"""Golden shard-fingerprint fixtures: the generators' content, pinned.

One fixture per generator pins the fingerprints of the first four
shards (seed 0, 8-table shards).  Any change to a generator's draw
order, value pools or table identity shows up here as a readable
shard-addressed diff *before* it silently invalidates the streamed-vs-
materialized differential suite (which compares two runs of the same
build and therefore cannot see generator drift by itself).

Regenerate intentionally with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/corpus/test_golden_shards.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.corpus import KnowledgeBase, open_stream, shard_fingerprint

GOLDEN_DIR = Path(__file__).parent / "golden"
KINDS = ("wiki", "git", "infobox")
SHARDS = 4
SHARD_TABLES = 8


def shard_prints(kind: str) -> list[dict]:
    stream = open_stream(kind, size=SHARDS * SHARD_TABLES, seed=0,
                         shard_tables=SHARD_TABLES,
                         kb=KnowledgeBase(seed=0))
    return [{"shard": index,
             "tables": len(stream.generate_shard(index)),
             "fingerprint": shard_fingerprint(stream.generate_shard(index))}
            for index in range(SHARDS)]


def golden_path(kind: str) -> Path:
    return GOLDEN_DIR / f"shards-{kind}.json"


def check_against_golden(kind: str, actual: list[dict]) -> None:
    path = golden_path(kind)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(
            {"kind": kind, "seed": 0, "shard_tables": SHARD_TABLES,
             "records": actual}, indent=2) + "\n")
        return
    if not path.exists():
        pytest.fail(f"golden fixture missing: {path} "
                    f"(run with REPRO_REGEN_GOLDEN=1 to create it)")
    expected = json.loads(path.read_text())["records"]
    rows = []
    for want, got in zip(expected, actual):
        if want != got:
            rows.append(f"  shard {want['shard']}: expected "
                        f"{want['fingerprint']} ({want['tables']} tables), "
                        f"got {got['fingerprint']} ({got['tables']} tables)")
    if rows:
        pytest.fail(
            f"{kind!r} shard content drifted from the golden fixture "
            f"({len(rows)} shard(s)) — the streamed-vs-materialized "
            f"differential suite can no longer be compared against "
            f"earlier builds.\nIf the change is intentional, regenerate "
            f"with REPRO_REGEN_GOLDEN=1.\n" + "\n".join(rows))


@pytest.mark.parametrize("kind", KINDS)
def test_shard_fingerprints_match_golden(kind):
    check_against_golden(kind, shard_prints(kind))


def test_golden_diff_is_readable():
    """A perturbed fingerprint must fail with a shard-addressed message."""
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regenerating fixtures")
    expected = json.loads(golden_path("wiki").read_text())["records"]
    perturbed = [dict(r) for r in expected]
    perturbed[2]["fingerprint"] = "0" * 16
    with pytest.raises(pytest.fail.Exception) as failure:
        check_against_golden("wiki", perturbed)
    message = str(failure.value)
    assert "shard 2" in message
    assert "REPRO_REGEN_GOLDEN" in message
