"""Tests for the synthetic knowledge base."""

import pytest

from repro.corpus import DOMAINS, KnowledgeBase


@pytest.fixture(scope="module")
def kb():
    return KnowledgeBase(seed=0)


class TestConstruction:
    def test_deterministic_given_seed(self):
        a, b = KnowledgeBase(seed=3), KnowledgeBase(seed=3)
        assert [e.name for e in a.entities] == [e.name for e in b.entities]
        assert a.facts["countries"][0]["population"] == b.facts["countries"][0]["population"]

    def test_different_seeds_differ(self):
        a, b = KnowledgeBase(seed=1), KnowledgeBase(seed=2)
        pop_a = [r["population"] for r in a.facts["countries"]]
        pop_b = [r["population"] for r in b.facts["countries"]]
        assert pop_a != pop_b

    def test_entity_ids_dense(self, kb):
        assert [e.entity_id for e in kb.entities] == list(range(kb.num_entities))

    def test_all_domains_populated(self, kb):
        for domain in DOMAINS:
            assert kb.domain_records(domain)

    def test_sizes_configurable(self):
        kb = KnowledgeBase(seed=0, num_films=10, num_athletes=5, num_companies=7)
        assert len(kb.facts["films"]) == 10
        assert len(kb.facts["athletes"]) == 5
        assert len(kb.facts["companies"]) == 7


class TestConsistency:
    def test_capitals_are_entities(self, kb):
        for record in kb.domain_records("countries"):
            assert record["capital"].etype == "city"

    def test_film_language_matches_country(self, kb):
        country_language = {r["country"].entity_id: r["language"]
                           for r in kb.domain_records("countries")}
        for film in kb.domain_records("films"):
            assert film["language"] == country_language[film["country"].entity_id]

    def test_subject_names_unique_per_domain(self, kb):
        for domain in DOMAINS:
            subject = kb.subject_attribute(domain)
            names = [r[subject].name for r in kb.domain_records(domain)]
            assert len(names) == len(set(names))

    def test_entities_of_type(self, kb):
        countries = kb.entities_of_type("country")
        assert len(countries) == 30
        assert all(e.etype == "country" for e in countries)
        assert kb.entities_of_type("nonexistent") == []


class TestAccessors:
    def test_attribute_names_exclude_subject(self, kb):
        attrs = kb.attribute_names("countries")
        assert "country" not in attrs
        assert "capital" in attrs

    def test_unknown_domain_raises(self, kb):
        with pytest.raises(KeyError):
            kb.domain_records("planets")

    def test_entity_lookup(self, kb):
        entity = kb.entities[5]
        assert kb.entity(5) == entity
