"""Tests for deterministic corpus splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import KnowledgeBase, assign_split, generate_wiki_corpus, split_tables, stable_hash
from repro.tables import Table


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("wiki-3") == stable_hash("wiki-3")

    def test_spreads_values(self):
        hashes = {stable_hash(f"t{i}") % 100 for i in range(200)}
        assert len(hashes) > 50

    @given(st.text(max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_in_64_bit_range(self, text):
        assert 0 <= stable_hash(text) < 2**64


class TestAssignSplit:
    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            assign_split("x", fractions=(0.5, 0.2))

    def test_index_in_range(self):
        for i in range(100):
            assert assign_split(f"t{i}") in (0, 1, 2)

    def test_salt_changes_assignment(self):
        ids = [f"t{i}" for i in range(100)]
        base = [assign_split(i) for i in ids]
        salted = [assign_split(i, salt="v2") for i in ids]
        assert base != salted


class TestSplitTables:
    def test_partition_complete_and_disjoint(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 60, seed=0)
        train, valid, test = split_tables(corpus)
        assert len(train) + len(valid) + len(test) == 60
        ids = [t.table_id for group in (train, valid, test) for t in group]
        assert len(set(ids)) == 60

    def test_rough_proportions(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 300, seed=0)
        train, valid, test = split_tables(corpus)
        assert len(train) > len(valid)
        assert len(train) > len(test)
        assert 0.6 < len(train) / 300 < 0.95

    def test_missing_id_rejected(self):
        with pytest.raises(ValueError):
            split_tables([Table(["a"], [["x"]])])

    def test_stability_across_calls(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 40, seed=0)
        first = split_tables(corpus)
        second = split_tables(corpus)
        for a, b in zip(first, second):
            assert [t.table_id for t in a] == [t.table_id for t in b]
