"""Tests for deterministic corpus splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import KnowledgeBase, assign_split, generate_wiki_corpus, split_tables, stable_hash
from repro.tables import Table


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("wiki-3") == stable_hash("wiki-3")

    def test_spreads_values(self):
        hashes = {stable_hash(f"t{i}") % 100 for i in range(200)}
        assert len(hashes) > 50

    @given(st.text(max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_in_64_bit_range(self, text):
        assert 0 <= stable_hash(text) < 2**64


class TestAssignSplit:
    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            assign_split("x", fractions=(0.5, 0.2))

    def test_index_in_range(self):
        for i in range(100):
            assert assign_split(f"t{i}") in (0, 1, 2)

    def test_salt_changes_assignment(self):
        ids = [f"t{i}" for i in range(100)]
        base = [assign_split(i) for i in ids]
        salted = [assign_split(i, salt="v2") for i in ids]
        assert base != salted


class TestSplitTables:
    def test_partition_complete_and_disjoint(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 60, seed=0)
        train, valid, test = split_tables(corpus)
        assert len(train) + len(valid) + len(test) == 60
        ids = [t.table_id for group in (train, valid, test) for t in group]
        assert len(set(ids)) == 60

    def test_rough_proportions(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 300, seed=0)
        train, valid, test = split_tables(corpus)
        assert len(train) > len(valid)
        assert len(train) > len(test)
        assert 0.6 < len(train) / 300 < 0.95

    def test_missing_id_rejected(self):
        with pytest.raises(ValueError):
            split_tables([Table(["a"], [["x"]])])

    def test_stability_across_calls(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 40, seed=0)
        first = split_tables(corpus)
        second = split_tables(corpus)
        for a, b in zip(first, second):
            assert [t.table_id for t in a] == [t.table_id for t in b]


class TestSplitEdgeCases:
    """Degenerate inputs: empty fractions, empty/size-1 corpora."""

    def test_empty_fractions_rejected(self):
        with pytest.raises(ValueError):
            assign_split("x", fractions=())
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 2, seed=0)
        with pytest.raises(ValueError):
            split_tables(corpus, fractions=())

    def test_zero_fraction_group_stays_empty(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 50, seed=0)
        train, valid, test = split_tables(corpus, fractions=(0.9, 0.0, 0.1))
        assert valid == []
        assert len(train) + len(test) == 50

    def test_single_full_fraction_takes_everything(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 10, seed=0)
        (everything,) = split_tables(corpus, fractions=(1.0,))
        assert len(everything) == 10

    def test_empty_corpus_yields_empty_groups(self):
        assert split_tables([]) == ([], [], [])

    def test_size_one_corpus_lands_in_exactly_one_group(self):
        corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 1, seed=0)
        groups = split_tables(corpus)
        occupied = [g for g in groups if g]
        assert len(occupied) == 1
        assert occupied[0][0].table_id == corpus[0].table_id
        # And the assignment is stable across calls.
        assert [len(g) for g in split_tables(corpus)] == [len(g)
                                                          for g in groups]

    def test_assign_split_stable_across_calls(self):
        ids = [f"t{i}" for i in range(50)]
        assert ([assign_split(i, salt="s") for i in ids]
                == [assign_split(i, salt="s") for i in ids])

    def test_regenerated_corpus_splits_identically(self):
        """Splits key on table_id, so regenerating the same seeded corpus
        (fresh objects, same ids) reproduces the same partition."""
        first = split_tables(generate_wiki_corpus(KnowledgeBase(seed=0),
                                                  30, seed=0))
        second = split_tables(generate_wiki_corpus(KnowledgeBase(seed=0),
                                                   30, seed=0))
        for a, b in zip(first, second):
            assert [t.table_id for t in a] == [t.table_id for t in b]
