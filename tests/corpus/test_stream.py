"""Unit and property tests for the streaming-corpus substrate.

The load-bearing invariants of the shard-seeding scheme — order
freedom, prefix stability, spawn-key collision freedom, and the shard
window being pure cache — are exercised with hypothesis so the
differential suite can lean on them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import (
    EmptyCorpusError,
    GitTableStream,
    InfoboxStream,
    KnowledgeBase,
    MaterializedCorpus,
    ShardWindow,
    WikiTableStream,
    as_stream,
    open_stream,
    shard_fingerprint,
    shard_seed,
    table_fingerprint,
)

KB = KnowledgeBase(seed=0)


def wiki(size, seed=0, shard_tables=4):
    return WikiTableStream(KB, size, seed=seed, shard_tables=shard_tables)


# ----------------------------------------------------------------------
# Seeding scheme
# ----------------------------------------------------------------------
class TestShardSeed:
    def test_matches_spawn(self):
        import numpy as np

        parent = np.random.SeedSequence(7)
        children = parent.spawn(5)
        for index, child in enumerate(children):
            direct = shard_seed(7, index)
            assert (np.random.default_rng(direct).integers(2**32)
                    == np.random.default_rng(child).integers(2**32))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            shard_seed(0, -1)

    @given(st.integers(0, 2**16), st.integers(0, 256), st.integers(0, 256))
    @settings(max_examples=50, deadline=None)
    def test_collision_free_across_indices(self, seed, i, j):
        import numpy as np

        draw = lambda s: np.random.default_rng(s).integers(2**63)  # noqa: E731
        if i != j:
            assert draw(shard_seed(seed, i)) != draw(shard_seed(seed, j))


# ----------------------------------------------------------------------
# Geometry and iteration
# ----------------------------------------------------------------------
class TestGeometry:
    def test_shard_count_and_lengths(self):
        stream = wiki(10, shard_tables=4)
        assert stream.num_shards == 3
        assert [stream.shard_length(i) for i in range(3)] == [4, 4, 2]
        assert [len(shard) for shard in stream] == [4, 4, 2]

    def test_out_of_range_shard_rejected(self):
        stream = wiki(10, shard_tables=4)
        with pytest.raises(IndexError):
            stream.shard_length(3)
        with pytest.raises(IndexError):
            stream.shard_length(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            wiki(10, shard_tables=0)
        with pytest.raises(ValueError):
            wiki(-1)

    def test_infinite_stream(self):
        stream = wiki(None, shard_tables=4)
        assert stream.is_infinite
        assert stream.num_shards is None
        assert stream.shard_length(10**9) == 4
        it = stream.iter_tables()
        ids = [next(it).table_id for _ in range(6)]
        assert ids == [f"wiki-{i}" for i in range(6)]
        with pytest.raises(ValueError):
            stream.materialize()

    def test_global_table_ids(self):
        stream = wiki(10, shard_tables=4)
        flat = [t.table_id for t in stream.iter_tables()]
        assert flat == [f"wiki-{i}" for i in range(10)]

    def test_head_tables_bounded(self):
        stream = wiki(10, shard_tables=4)
        head = stream.head_tables(5)
        assert [t.table_id for t in head] == [f"wiki-{i}" for i in range(5)]
        assert stream.head_tables(0) == []
        assert len(stream.head_tables(99)) == 10


# ----------------------------------------------------------------------
# Determinism invariants
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_order_free_regeneration(self):
        stream = wiki(12)
        backwards = [shard_fingerprint(stream.generate_shard(i))
                     for i in (2, 1, 0)]
        forwards = [shard_fingerprint(shard) for shard in stream]
        assert backwards == list(reversed(forwards))

    @given(small=st.integers(1, 6), extra=st.integers(0, 6))
    @settings(max_examples=20, deadline=None)
    def test_prefix_stable_across_sizes(self, small, extra):
        """Growing a corpus never changes its existing full shards."""
        a = wiki(small * 4, shard_tables=4)
        b = wiki((small + extra) * 4, shard_tables=4)
        for index in range(small):
            assert (shard_fingerprint(a.generate_shard(index))
                    == shard_fingerprint(b.generate_shard(index)))

    def test_finite_prefix_matches_infinite(self):
        finite = wiki(12, shard_tables=4)
        infinite = wiki(None, shard_tables=4)
        for index in range(3):
            assert (shard_fingerprint(finite.generate_shard(index))
                    == shard_fingerprint(infinite.generate_shard(index)))

    def test_seed_changes_content(self):
        assert (shard_fingerprint(wiki(8, seed=0).generate_shard(0))
                != shard_fingerprint(wiki(8, seed=1).generate_shard(0)))

    def test_fingerprint_identity(self):
        assert wiki(8).fingerprint() == wiki(8).fingerprint()
        assert wiki(8).fingerprint() != wiki(12).fingerprint()
        assert wiki(8).fingerprint() != wiki(8, seed=3).fingerprint()
        assert (wiki(8, shard_tables=2).fingerprint()
                != wiki(8, shard_tables=4).fingerprint())

    def test_table_fingerprint_sensitive(self):
        tables = wiki(4).generate_shard(0)
        prints = {table_fingerprint(t) for t in tables}
        assert len(prints) == len(tables)
        assert table_fingerprint(tables[0]) == table_fingerprint(tables[0])


# ----------------------------------------------------------------------
# Materialization bridge
# ----------------------------------------------------------------------
class TestMaterialized:
    def test_round_trip(self):
        stream = wiki(10)
        wrapped = MaterializedCorpus(stream.materialize(), shard_tables=4)
        assert wrapped.size == 10
        for index in range(stream.num_shards):
            assert (shard_fingerprint(wrapped.generate_shard(index))
                    == shard_fingerprint(stream.generate_shard(index)))

    def test_spec_is_content_addressed(self):
        tables = wiki(8).materialize()
        a = MaterializedCorpus(tables, shard_tables=4)
        b = MaterializedCorpus(list(tables), shard_tables=4)
        assert a.fingerprint() == b.fingerprint()
        c = MaterializedCorpus(tables[:-1] + [tables[0]], shard_tables=4)
        assert a.fingerprint() != c.fingerprint()

    def test_as_stream_dispatch(self):
        tables = wiki(8).materialize()
        assert isinstance(as_stream(tables), MaterializedCorpus)
        stream = wiki(8)
        assert as_stream(stream) is stream


class TestOpenStream:
    def test_kinds(self):
        assert isinstance(open_stream("wiki", size=4, kb=KB), WikiTableStream)
        assert isinstance(open_stream("git", size=4), GitTableStream)
        assert isinstance(open_stream("infobox", size=4, kb=KB),
                          InfoboxStream)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            open_stream("parquet", size=4)

    def test_ids_per_kind(self):
        for kind, prefix in (("wiki", "wiki"), ("git", "git"),
                             ("infobox", "infobox")):
            stream = open_stream(kind, size=3, kb=KB, shard_tables=2)
            assert [t.table_id for t in stream.iter_tables()] == [
                f"{prefix}-{i}" for i in range(3)]


# ----------------------------------------------------------------------
# The shard window is pure cache
# ----------------------------------------------------------------------
class TestShardWindow:
    def test_bounded_residency_and_counters(self):
        window = ShardWindow(wiki(40, shard_tables=4), max_shards=2)
        for index in range(5):
            window.shard(index)
        assert len(window) == 2
        assert window.generated == 5
        assert window.evicted == 3
        window.shard(4)
        assert window.hits == 1

    def test_lru_eviction_order(self):
        window = ShardWindow(wiki(40, shard_tables=4), max_shards=2)
        window.shard(0)
        window.shard(1)
        window.shard(0)        # refresh 0 -> 1 is now the LRU entry
        window.shard(2)        # evicts 1
        generated = window.generated
        window.shard(0)        # still resident
        assert window.generated == generated

    def test_table_lookup_bounds(self):
        window = ShardWindow(wiki(10, shard_tables=4), max_shards=2)
        assert window.table(9).table_id == "wiki-9"
        with pytest.raises(IndexError):
            window.table(10)
        with pytest.raises(IndexError):
            window.table(-1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ShardWindow(wiki(8), max_shards=0)

    @given(capacity=st.integers(1, 6),
           lookups=st.lists(st.integers(0, 19), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_capacity_never_changes_resolution(self, capacity, lookups):
        """Window size is scheduling: any capacity, same tables."""
        reference = wiki(20, shard_tables=4).materialize()
        window = ShardWindow(wiki(20, shard_tables=4), max_shards=capacity)
        for index in lookups:
            assert (table_fingerprint(window.table(index))
                    == table_fingerprint(reference[index]))


class TestEmptyCorpusError:
    def test_is_a_value_error(self):
        assert issubclass(EmptyCorpusError, ValueError)
