"""Differential equivalence: streamed training must equal materialized.

The streaming layer's contract is "streamed ≡ materialized, any worker
count, any failure": how a corpus is *delivered* — whole list, bounded
shard window, regenerated in a respawned worker — is pure scheduling
and must never move a checkpoint bit.  These tests enforce the contract
at the strongest level available, the bytes of saved checkpoint
archives, for all three generators, serial and 4-worker runs, a
fault-injected run, and finite and mid-infinite-stream resumes.
"""

import pickle

import pytest

from repro.corpus import MaterializedCorpus
from repro.nn.io import CheckpointError
from repro.parallel import FixedClock, ParallelConfig, parse_fault_plan
from repro.pretrain import EmptyCorpusError, Pretrainer, PretrainConfig

from .conftest import SHARD_TABLES

KINDS = ("wiki", "git", "infobox")

#: Supervisor settings tuned for tests: fast detection, fast respawn.
_FAST = dict(heartbeat_interval=0.1, step_deadline=2.0,
             respawn_backoff=0.01)


def pretrain_config(workers=None, faults=None, **overrides) -> PretrainConfig:
    parallel = None
    if workers is not None:
        supervisor = dict(_FAST) if faults is not None else {}
        parallel = ParallelConfig(workers=workers, shard_size=1,
                                  faults=faults, **supervisor)
    settings = dict(steps=8, batch_size=4, seed=0, parallel=parallel)
    settings.update(overrides)
    return PretrainConfig(**settings)


def checkpoint_bytes(make_model, corpus, config, tmp_path, tag,
                     checkpoint_dir=None):
    trainer = Pretrainer(make_model(), config, clock=FixedClock())
    trainer.train(corpus, checkpoint_dir=checkpoint_dir)
    return trainer.save_checkpoint(tmp_path / tag).read_bytes()


class TestStreamedVsMaterialized:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("workers", (1, 4))
    def test_checkpoint_bytes_equal(self, kind, workers, make_model,
                                    stream_factory, tmp_path):
        config = pretrain_config(workers)
        stream = stream_factory(kind)
        expected = checkpoint_bytes(
            make_model, stream.materialize(), config, tmp_path, "mat")
        actual = checkpoint_bytes(
            make_model, stream_factory(kind), config, tmp_path, "stream")
        assert actual == expected, (
            f"{kind}: streamed workers={workers} checkpoint differs from "
            f"materialized")

    def test_window_capacity_is_scheduling(self, make_model, stream_factory,
                                           tmp_path):
        """stream_window is excluded from checkpoint config and from the
        training numerics: a 2-shard window trains the same bytes as an
        8-shard window."""
        archives = {}
        for window in (2, 8):
            archives[window] = checkpoint_bytes(
                make_model, stream_factory("wiki"),
                pretrain_config(stream_window=window), tmp_path,
                f"win{window}")
        assert archives[2] == archives[8]

    def test_fault_injected_run_regenerates_shards_bit_identically(
            self, make_model, stream_factory, tmp_path):
        """die@5:1 kills worker 1 mid-run; the respawned worker rebuilds
        its shards from descriptors against the regenerated stream, and
        the checkpoint still byte-equals an unfaulted materialized run."""
        expected = checkpoint_bytes(
            make_model, stream_factory("wiki").materialize(),
            pretrain_config(4), tmp_path, "mat")
        actual = checkpoint_bytes(
            make_model, stream_factory("wiki"),
            pretrain_config(4, faults=parse_fault_plan("die@5:1")),
            tmp_path, "faulted")
        assert actual == expected

    def test_finite_stream_resume_bit_identical(self, make_model,
                                                stream_factory, tmp_path):
        reference = checkpoint_bytes(
            make_model, stream_factory("wiki").materialize(),
            pretrain_config(checkpoint_every=4), tmp_path, "reference")

        snapshots = tmp_path / "snapshots"
        checkpoint_bytes(make_model, stream_factory("wiki"),
                         pretrain_config(checkpoint_every=4), tmp_path,
                         "first", checkpoint_dir=snapshots)
        resumed = Pretrainer(make_model(),
                             pretrain_config(checkpoint_every=4),
                             clock=FixedClock())
        assert resumed.resume(snapshots / "ckpt-00000004.npz") == 4
        resumed.train(stream_factory("wiki"))
        actual = resumed.save_checkpoint(tmp_path / "resumed").read_bytes()
        assert actual == reference


class TestInfiniteStream:
    def test_mid_stream_resume_bit_identical(self, make_model,
                                             stream_factory, tmp_path):
        """Resume re-derives the cursor from the history length and
        re-enters the stream exactly where the checkpoint left it."""
        config = pretrain_config(checkpoint_every=4)
        full = Pretrainer(make_model(), config, clock=FixedClock())
        snapshots = tmp_path / "snapshots"
        full.train(stream_factory("wiki", size=None),
                   checkpoint_dir=snapshots)
        expected = full.save_checkpoint(tmp_path / "full").read_bytes()

        resumed = Pretrainer(make_model(), config, clock=FixedClock())
        assert resumed.resume(snapshots / "ckpt-00000004.npz") == 4
        resumed.train(stream_factory("wiki", size=None))
        actual = resumed.save_checkpoint(tmp_path / "resumed").read_bytes()
        assert actual == expected

    def test_resume_with_different_stream_rejected(self, make_model,
                                                   stream_factory, tmp_path):
        config = pretrain_config(checkpoint_every=4)
        trainer = Pretrainer(make_model(), config, clock=FixedClock())
        snapshots = tmp_path / "snapshots"
        trainer.train(stream_factory("wiki", size=None),
                      checkpoint_dir=snapshots)

        resumed = Pretrainer(make_model(), config, clock=FixedClock())
        resumed.resume(snapshots / "ckpt-00000004.npz")
        with pytest.raises(CheckpointError, match="fingerprint"):
            resumed.train(stream_factory("wiki", size=None, seed=99))

    def test_resume_with_finite_corpus_rejected(self, make_model,
                                                stream_factory, tmp_path):
        config = pretrain_config(checkpoint_every=4)
        trainer = Pretrainer(make_model(), config, clock=FixedClock())
        snapshots = tmp_path / "snapshots"
        trainer.train(stream_factory("wiki", size=None),
                      checkpoint_dir=snapshots)

        resumed = Pretrainer(make_model(), config, clock=FixedClock())
        resumed.resume(snapshots / "ckpt-00000004.npz")
        with pytest.raises(CheckpointError, match="fingerprint"):
            resumed.train(stream_factory("wiki").materialize())

    def test_sequential_checkpoint_records_cursor(self, make_model,
                                                  stream_factory):
        trainer = Pretrainer(make_model(), pretrain_config(steps=4),
                             clock=FixedClock())
        trainer.train(stream_factory("wiki", size=None))
        saved = trainer.capture().config
        assert saved["stream"] == {
            "mode": "sequential",
            "fingerprint": stream_factory("wiki", size=None).fingerprint(),
            "cursor": 4 * 4,   # steps * batch_size tables consumed
        }


class TestCheckpointConfig:
    def test_finite_stream_leaves_no_trace_in_config(self, make_model,
                                                     stream_factory):
        """Finite streaming is scheduling: the checkpoint config of a
        streamed run is exactly that of a materialized run."""
        streamed = Pretrainer(make_model(), pretrain_config(steps=2),
                              clock=FixedClock())
        streamed.train(stream_factory("wiki"))
        saved = streamed.capture().config
        assert saved["stream"] is None
        assert "stream_window" not in saved


class TestWorkerDescriptors:
    def test_descriptor_frames_shrink_payloads(self, make_model,
                                               stream_factory):
        """Streamed parallel steps ship RNG state, not pickled batches."""
        from repro.pretrain.trainer import (_ShardDescriptor, _ShardPayload,
                                            _slice_masked)

        trainer = Pretrainer(make_model(), pretrain_config(2),
                             clock=FixedClock())
        source = trainer._bind_source(stream_factory("wiki"))
        state = trainer.rng.bit_generator.state
        masked = trainer._masked_batch(source.draw(trainer.rng, 4, 0))
        payload = _ShardPayload(_slice_masked(masked, slice(0, 1)), 0.5, 0.0)
        descriptor = _ShardDescriptor(0, state, (0, 1), 0.5, 0.0)
        assert (len(pickle.dumps(descriptor))
                < len(pickle.dumps(payload)) / 4)

    def test_descriptor_resolution_leaves_trainer_rng_untouched(
            self, make_model, stream_factory):
        """Resolution must be safe in the *parent* (degraded fallback)."""
        trainer = Pretrainer(make_model(), pretrain_config(2),
                             clock=FixedClock())
        source = trainer._bind_source(stream_factory("wiki"))
        from repro.pretrain.trainer import _ShardDescriptor

        state = trainer.rng.bit_generator.state
        descriptor = _ShardDescriptor(0, state, (0, 2), 1.0, 0.0)
        resolved_a = trainer._resolve_descriptor(descriptor)
        assert trainer.rng.bit_generator.state == state
        # Memoized: the same step resolves to the same regenerated batch.
        trainer._desc_memo = None
        resolved_b = trainer._resolve_descriptor(descriptor)
        assert (resolved_a.masked.batch.token_ids
                == resolved_b.masked.batch.token_ids).all()


class TestEmptyCorpus:
    def test_empty_list_rejected_up_front(self, make_model):
        trainer = Pretrainer(make_model(), pretrain_config())
        with pytest.raises(EmptyCorpusError):
            trainer.train([])

    def test_empty_stream_rejected_up_front(self, make_model):
        trainer = Pretrainer(make_model(), pretrain_config())
        with pytest.raises(EmptyCorpusError):
            trainer.train(MaterializedCorpus([], shard_tables=SHARD_TABLES))

    def test_sanitize_check_rejects_empty(self, make_model):
        trainer = Pretrainer(make_model(), pretrain_config())
        with pytest.raises(EmptyCorpusError):
            trainer.sanitize_check([])
