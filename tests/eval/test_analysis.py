"""Tests for sliced error analysis."""

import pytest

from repro.eval import (
    header_slicer,
    numeric_table_slicer,
    size_slicer,
    slice_by,
    sliced_accuracy,
)
from repro.tables import Table


def numeric_table():
    return Table(["a", "b"], [[1.0, 2.0], [3.0, 4.0]])


def text_table():
    return Table(["name", "city"], [["ann", "paris"], ["bob", "rome"]])


class TestSlicers:
    def test_numeric_slicer(self):
        assert numeric_table_slicer(numeric_table()) == "numeric"
        assert numeric_table_slicer(text_table()) == "textual"

    def test_header_slicer(self):
        assert header_slicer(text_table()) == "descriptive-header"
        assert header_slicer(text_table().without_header()) == "headerless"

    def test_size_slicer(self):
        small = Table(["a"], [["x"]])
        large = Table(["a", "b", "c", "d"],
                      [["x"] * 4 for _ in range(10)])
        assert size_slicer(small) == "small"
        assert size_slicer(large) == "large"


class TestSliceBy:
    def test_groups_indices(self):
        tables = [numeric_table(), text_table(), numeric_table()]
        groups = slice_by(tables, numeric_table_slicer)
        assert groups == {"numeric": [0, 2], "textual": [1]}


class TestSlicedAccuracy:
    def test_per_slice_scores(self):
        tables = [numeric_table(), text_table()]
        result = sliced_accuracy(tables, ["x", "y"], ["x", "z"],
                                 numeric_table_slicer)
        assert result["numeric"] == 1.0
        assert result["textual"] == 0.0

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            sliced_accuracy([numeric_table()], ["a", "b"], ["a"],
                            numeric_table_slicer)
