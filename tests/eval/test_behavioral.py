"""Tests for the behavioral test suite (§2.4's benchmarking-gap answer)."""

import numpy as np
import pytest

from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.eval import BehavioralTest, default_suite, run_suite
from repro.models import EncoderConfig, TableBert
from repro.text import train_tokenizer


@pytest.fixture(scope="module")
def probes():
    return generate_wiki_corpus(KnowledgeBase(seed=0), 6, seed=0)


@pytest.fixture(scope="module")
def model(probes):
    texts = []
    for t in probes:
        texts.append(t.context.text())
        texts.append(" ".join(t.header))
        for _, _, cell in t.iter_cells():
            texts.append(cell.text())
    tokenizer = train_tokenizer(texts, vocab_size=600)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16,
                           num_heads=2, num_layers=1, hidden_dim=32,
                           max_position=160)
    return TableBert(config, tokenizer, np.random.default_rng(0))


class TestDefaultSuite:
    def test_covers_all_kinds(self):
        kinds = {t.kind for t in default_suite()}
        assert kinds == {"INV", "DIR", "MFT"}

    def test_names_unique(self):
        names = [t.name for t in default_suite()]
        assert len(names) == len(set(names))


class TestRunSuite:
    def test_report_per_test(self, model, probes):
        report = run_suite(model, probes)
        assert len(report.reports) == len(default_suite())
        for r in report.reports:
            assert 0.0 <= r.pass_rate <= 1.0
            assert r.cases > 0

    def test_empty_corpus_rejected(self, model):
        with pytest.raises(ValueError):
            run_suite(model, [])

    def test_mft_determinism_always_passes(self, model, probes):
        report = run_suite(model, probes)
        determinism = next(r for r in report.reports
                           if r.name == "identity determinism")
        assert determinism.pass_rate == 1.0

    def test_mft_distinctness_always_passes(self, model, probes):
        report = run_suite(model, probes)
        distinctness = next(r for r in report.reports
                            if r.name == "distinctness")
        assert distinctness.pass_rate == 1.0

    def test_by_kind_filter(self, model, probes):
        report = run_suite(model, probes)
        assert all(r.kind == "INV" for r in report.by_kind("INV"))
        assert report.by_kind("INV")

    def test_render_readable(self, model, probes):
        text = run_suite(model, probes).render()
        assert "bert" in text
        assert "[MFT]" in text

    def test_deterministic_given_seed(self, model, probes):
        a = run_suite(model, probes, seed=3)
        b = run_suite(model, probes, seed=3)
        assert [r.mean_score for r in a.reports] == \
            [r.mean_score for r in b.reports]

    def test_custom_test_list(self, model, probes):
        custom = [BehavioralTest("always-one", "MFT",
                                 lambda m, t, rng: 1.0, threshold=0.5)]
        report = run_suite(model, probes, tests=custom)
        assert len(report.reports) == 1
        assert report.reports[0].pass_rate == 1.0

    def test_row_requirement_skips_small_tables(self, model):
        from repro.tables import Table
        single = Table(["a"], [["x"]], table_id="s")
        custom = [BehavioralTest("needs-rows", "INV",
                                 lambda m, t, rng: 1.0, requires_rows=2)]
        report = run_suite(model, [single], tests=custom)
        assert report.reports == []

    def test_directional_value_substitution_mostly_passes(self, model, probes):
        report = run_suite(model, probes)
        substitution = next(r for r in report.reports
                            if r.name == "value-substitution direction")
        # Gradient of information should flow: replaced cells move more than
        # untouched cells on a majority of probes.
        assert substitution.pass_rate >= 0.5
