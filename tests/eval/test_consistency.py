"""Tests for representation-consistency checks (§2.4 benchmark gap)."""

import numpy as np
import pytest

from repro.eval import (
    cosine,
    header_drop_shift,
    row_permutation_consistency,
    value_substitution_sensitivity,
)
from repro.models import EncoderConfig, TableBert
from repro.tables import Table
from repro.text import train_tokenizer


@pytest.fixture(scope="module")
def model():
    corpus = ["alpha beta gamma delta paris rome tokyo name city value"] * 3
    tokenizer = train_tokenizer(corpus, vocab_size=300)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16,
                           num_heads=2, num_layers=1, hidden_dim=32,
                           max_position=128)
    return TableBert(config, tokenizer, np.random.default_rng(0))


@pytest.fixture
def table():
    return Table(["name", "city"],
                 [["alpha", "paris"], ["beta", "rome"], ["gamma", "tokyo"]],
                 table_id="t")


class TestCosine:
    def test_identical(self):
        v = np.array([1.0, 2.0])
        assert cosine(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0, abs=1e-8)


class TestRowPermutation:
    def test_score_in_range(self, model, table):
        score = row_permutation_consistency(model, table, np.random.default_rng(0))
        assert -1.0 <= score <= 1.0

    def test_single_row_rejected(self, model):
        single = Table(["a"], [["x"]], table_id="s")
        with pytest.raises(ValueError):
            row_permutation_consistency(model, single, np.random.default_rng(0))

    def test_deterministic_given_seed(self, model, table):
        a = row_permutation_consistency(model, table, np.random.default_rng(5))
        b = row_permutation_consistency(model, table, np.random.default_rng(5))
        assert a == b


class TestValueSubstitution:
    def test_sensitivity_positive(self, model, table):
        score = value_substitution_sensitivity(model, table,
                                               np.random.default_rng(0))
        assert score > 0.0

    def test_empty_table_rejected(self, model):
        empty = Table(["a"], [[None]], table_id="e")
        with pytest.raises(ValueError):
            value_substitution_sensitivity(model, empty, np.random.default_rng(0))


class TestHeaderDrop:
    def test_shift_positive_for_named_headers(self, model, table):
        assert header_drop_shift(model, table) > 0.0

    def test_no_shift_for_already_headerless(self, model, table):
        bare = table.without_header()
        assert header_drop_shift(model, bare) == pytest.approx(0.0, abs=1e-9)
