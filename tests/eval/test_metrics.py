"""Tests for evaluation metrics."""

import pytest

from repro.eval import (
    accuracy,
    denotation_accuracy,
    denotation_match,
    hits_at_k,
    macro_f1,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_recall_f1,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy([1, 2, 3], [1, 0, 3]) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])


class TestPrecisionRecallF1:
    def test_perfect(self):
        p, r, f = precision_recall_f1([1, 0, 1], [1, 0, 1])
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_half_precision(self):
        p, r, f = precision_recall_f1([1, 1], [1, 0])
        assert p == 0.5 and r == 1.0
        assert f == pytest.approx(2 / 3)

    def test_no_positives_predicted(self):
        p, r, f = precision_recall_f1([0, 0], [1, 1])
        assert (p, r, f) == (0.0, 0.0, 0.0)

    def test_custom_positive_label(self):
        p, r, f = precision_recall_f1(["a", "b"], ["a", "a"], positive_label="a")
        assert p == 1.0 and r == 0.5


class TestMacroF1:
    def test_balanced_classes(self):
        assert macro_f1(["a", "b"], ["a", "b"]) == 1.0

    def test_one_class_failed(self):
        score = macro_f1(["a", "a"], ["a", "b"])
        assert 0 < score < 1

    def test_empty(self):
        assert macro_f1([], []) == 0.0


class TestRanking:
    RANKINGS = [["t1", "t2", "t3"], ["t2", "t1", "t3"]]
    GOLDS = ["t1", "t1"]

    def test_hits_at_1(self):
        assert hits_at_k(self.RANKINGS, self.GOLDS, k=1) == 0.5

    def test_hits_at_2(self):
        assert hits_at_k(self.RANKINGS, self.GOLDS, k=2) == 1.0

    def test_mrr(self):
        assert mean_reciprocal_rank(self.RANKINGS, self.GOLDS) == pytest.approx(0.75)

    def test_mrr_missing_gold(self):
        assert mean_reciprocal_rank([["a"]], ["z"]) == 0.0

    def test_ndcg_first_is_one(self):
        assert ndcg_at_k([["g"]], ["g"], k=5) == 1.0

    def test_ndcg_second_discounted(self):
        import numpy as np
        assert ndcg_at_k([["x", "g"]], ["g"], k=5) == pytest.approx(1 / np.log2(3))

    def test_empty(self):
        assert hits_at_k([], [], k=1) == 0.0


class TestDenotation:
    def test_numeric_tolerance(self):
        assert denotation_match([25.0], ["25"])
        assert denotation_match(["25.69"], [25.69])

    def test_case_insensitive_text(self):
        assert denotation_match(["Paris"], ["paris"])

    def test_multiset_semantics(self):
        assert denotation_match(["a", "a", "b"], ["b", "a", "a"])
        assert not denotation_match(["a", "b"], ["a", "a", "b"])

    def test_mismatch(self):
        assert not denotation_match(["paris"], ["rome"])

    def test_accuracy_aggregation(self):
        preds = [["paris"], [1.0]]
        golds = [["paris"], [2.0]]
        assert denotation_accuracy(preds, golds) == 0.5

    def test_thousands_separator(self):
        assert denotation_match(["1,234"], [1234])
