"""Thin re-export: the checker lives in ``repro.analysis.gradcheck`` now."""

from repro.analysis.gradcheck import check_gradient, numeric_gradient

__all__ = ["numeric_gradient", "check_gradient"]
