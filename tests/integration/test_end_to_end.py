"""Integration tests: full Fig. 1 pipelines across module boundaries."""

import numpy as np
import pytest

from repro.core import (
    build_tokenizer_for_tables,
    create_model,
    load_pretrained,
    run_imputation_pipeline,
    save_pretrained,
)
from repro.corpus import (
    KnowledgeBase,
    build_imputation_dataset,
    generate_wiki_corpus,
    split_tables,
)
from repro.models import EncoderConfig, Tapex
from repro.nn import Adam
from repro.pretrain import Pretrainer, PretrainConfig
from repro.sql import denotation_text, generate_labeled_queries
from repro.tasks import EntityImputer, FinetuneConfig, finetune


@pytest.fixture(scope="module")
def kb():
    return KnowledgeBase(seed=0)


@pytest.fixture(scope="module")
def corpus(kb):
    return generate_wiki_corpus(kb, 40, seed=0)


@pytest.fixture(scope="module")
def tokenizer(corpus):
    return build_tokenizer_for_tables(corpus, vocab_size=800)


@pytest.fixture(scope="module")
def config(tokenizer, kb):
    return EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16, num_heads=2,
                         num_layers=1, hidden_dim=32, max_position=144,
                         num_entities=kb.num_entities)


class TestPretrainFinetuneCycle:
    def test_pretrain_save_load_finetune(self, corpus, tokenizer, config,
                                         tmp_path):
        """The workflow the tutorial teaches: pretrain once, persist, load
        elsewhere, fine-tune for a downstream task."""
        model = create_model("turl", tokenizer, config=config, seed=0)
        Pretrainer(model, PretrainConfig(steps=10, batch_size=6)).train(corpus)
        save_pretrained(model, tmp_path / "turl")

        loaded = load_pretrained(tmp_path / "turl")
        train_tables, _, _ = split_tables(corpus)
        examples = [e for e in build_imputation_dataset(
            train_tables, np.random.default_rng(0), per_table=2)
            if e.answer_entity_id is not None]
        imputer = EntityImputer(loaded)
        history = finetune(imputer, examples,
                           FinetuneConfig(epochs=3, batch_size=8,
                                          learning_rate=3e-3))
        assert history[-1].loss < history[0].loss * 2  # numerically sane
        metrics = imputer.evaluate(examples)
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_pipeline_pretraining_helps_turl_imputation(self, corpus, kb,
                                                        tokenizer, config):
        """The paper's central claim at miniature scale: MER pretraining
        transfers to the imputation task (E1's shape)."""
        train_tables, _, test_tables = split_tables(corpus)
        examples = lambda tables: [
            e for e in build_imputation_dataset(
                tables, np.random.default_rng(1), per_table=2)
            if e.answer_entity_id is not None
        ]
        train_examples, test_examples = examples(train_tables), examples(test_tables)

        def run(pretrain: bool) -> float:
            model = create_model("turl", tokenizer, config=config, seed=0)
            if pretrain:
                Pretrainer(model, PretrainConfig(
                    steps=60, batch_size=8, learning_rate=5e-3,
                    mer_mask_probability=0.5)).train(train_tables)
            imputer = EntityImputer(model)
            finetune(imputer, train_examples,
                     FinetuneConfig(epochs=5, batch_size=8, learning_rate=3e-3))
            return imputer.evaluate(test_examples)["accuracy"]

        assert run(pretrain=True) >= run(pretrain=False)


class TestValuePipeline:
    def test_run_imputation_pipeline_end_to_end(self, corpus, tokenizer, config):
        result = run_imputation_pipeline(
            corpus, model_name="tapas", pretrained=True,
            tokenizer=tokenizer, config=config,
            pretrain_config=PretrainConfig(steps=10, batch_size=6),
            finetune_config=FinetuneConfig(epochs=4, batch_size=8,
                                           learning_rate=3e-3))
        assert result.train_metrics["accuracy"] > 0
        assert "tapas" in result.summary()


class TestNeuralExecutor:
    def test_tapex_learns_repeated_queries(self, corpus, tokenizer, config):
        """Train TAPEX on executor-labelled queries over one table and check
        it reproduces gold denotations on those training queries."""
        table = corpus[0]
        rng = np.random.default_rng(0)
        pairs = generate_labeled_queries(table, 6, rng)
        model = Tapex(config, tokenizer, np.random.default_rng(0),
                      max_answer_tokens=8)
        optimizer = Adam(model.parameters(), lr=5e-3)
        queries = [q.render() for q, _ in pairs]
        answers = [denotation_text(d) for _, d in pairs]
        for _ in range(60):
            optimizer.zero_grad()
            loss = model.loss([table] * len(pairs), queries, answers)
            loss.backward()
            optimizer.step()
        correct = sum(model.generate(table, q) == a
                      for q, a in zip(queries, answers))
        assert correct >= len(pairs) // 2
