"""Shared fixtures for model tests: a tokenizer and sample tables."""

import numpy as np
import pytest

from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig
from repro.tables import Table, TableContext
from repro.text import train_tokenizer


def corpus_texts(tables):
    texts = []
    for table in tables:
        texts.append(table.context.text())
        texts.append(" ".join(table.header))
        for _, _, cell in table.iter_cells():
            texts.append(cell.text())
    return texts


@pytest.fixture(scope="session")
def kb():
    return KnowledgeBase(seed=0)


@pytest.fixture(scope="session")
def wiki_tables(kb):
    return generate_wiki_corpus(kb, 20, seed=0)


@pytest.fixture(scope="session")
def tokenizer(wiki_tables):
    return train_tokenizer(corpus_texts(wiki_tables), vocab_size=700)


@pytest.fixture(scope="session")
def config(tokenizer, kb):
    return EncoderConfig(
        vocab_size=len(tokenizer.vocab),
        dim=16, num_heads=2, num_layers=1, hidden_dim=32,
        max_position=128, max_rows=12, max_columns=8,
        num_entities=kb.num_entities,
    )


@pytest.fixture
def sample_table():
    return Table(
        ["Country", "Capital", "Population"],
        [["Australia", "Canberra", 25.69], ["France", "Paris", 67.75]],
        context=TableContext(title="population by country"),
        table_id="sample",
    )
