"""Tests shared across the encoder zoo + model-specific behaviours."""

import numpy as np
import pytest

from repro.models import (
    MODEL_CLASSES,
    Mate,
    TaBert,
    TableBert,
    Tapas,
    Turl,
)
from repro.models.config import EncoderConfig
from repro.tables import Table

ENCODER_NAMES = ["bert", "tapas", "tabert", "turl", "mate", "tabbie", "tuta"]


def build(name, config, tokenizer):
    rng = np.random.default_rng(0)
    return MODEL_CLASSES[name](config, tokenizer, rng)


class TestEncodeApi:
    @pytest.mark.parametrize("name", ENCODER_NAMES)
    def test_encoding_granularities(self, name, config, tokenizer, sample_table):
        model = build(name, config, tokenizer)
        encoding = model.encode(sample_table)
        assert encoding.table_embedding.shape == (config.dim,)
        assert encoding.token_embeddings.shape[1] == config.dim
        assert set(encoding.row_embeddings)  # at least one row
        assert set(encoding.column_embeddings)
        assert encoding.dim == config.dim

    @pytest.mark.parametrize("name", ENCODER_NAMES)
    def test_cell_embeddings_cover_cells(self, name, config, tokenizer, sample_table):
        model = build(name, config, tokenizer)
        encoding = model.encode(sample_table)
        if name == "tabert":
            # Content snapshot may drop rows, but keeps the columns.
            assert encoding.cell_embeddings
        else:
            expected = {(r, c) for r in range(2) for c in range(3)}
            assert set(encoding.cell_embeddings) == expected

    @pytest.mark.parametrize("name", ENCODER_NAMES)
    def test_encode_is_deterministic(self, name, config, tokenizer, sample_table):
        model = build(name, config, tokenizer)
        a = model.encode(sample_table).table_embedding
        b = model.encode(sample_table).table_embedding
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", ENCODER_NAMES)
    def test_encode_restores_training_mode(self, name, config, tokenizer, sample_table):
        model = build(name, config, tokenizer)
        model.train()
        model.encode(sample_table)
        assert model.training

    def test_describe_reports_structure_flags(self, config, tokenizer):
        assert not build("bert", config, tokenizer).describe()["row_embeddings"]
        assert build("tapas", config, tokenizer).describe()["row_embeddings"]

    def test_context_override_changes_encoding(self, config, tokenizer, sample_table):
        model = build("bert", config, tokenizer)
        base = model.encode(sample_table, context="population by country")
        other = model.encode(sample_table, context="capital cities of the world")
        assert not np.allclose(base.table_embedding, other.table_embedding)


class TestStructuralSensitivity:
    def test_tapas_distinguishes_row_permutations_less_than_bert(
            self, config, tokenizer, sample_table):
        """Row/column embeddings change how permutations reflect in CLS;
        both models produce finite encodings either way."""
        for name in ("bert", "tapas"):
            model = build(name, config, tokenizer)
            permuted = sample_table.with_rows_permuted([1, 0])
            a = model.encode(sample_table).table_embedding
            b = model.encode(permuted).table_embedding
            assert np.all(np.isfinite(a)) and np.all(np.isfinite(b))

    def test_parameter_counts_ordered(self, config, tokenizer):
        bert = build("bert", config, tokenizer).num_parameters()
        tapas = build("tapas", config, tokenizer).num_parameters()
        turl = build("turl", config, tokenizer).num_parameters()
        assert bert < tapas < turl  # extra channels add parameters


class TestTapas:
    def test_qa_scores_shapes(self, config, tokenizer, sample_table):
        model = build("tapas", config, tokenizer)
        batch, _ = model.batch([sample_table, sample_table],
                               ["what is the capital of france"] * 2)
        token_scores, agg_logits = model.question_answer_scores(batch)
        assert token_scores.shape == (2, batch.seq_len)
        assert agg_logits.shape == (2, 4)


class TestTaBert:
    def test_content_snapshot_limits_rows(self, config, tokenizer):
        table = Table(["a", "b"], [[f"val {i}", f"w {i}"] for i in range(10)],
                      table_id="big")
        model = TaBert(config, tokenizer, np.random.default_rng(0), snapshot_rows=3)
        encoding = model.encode(table, context="val 7")
        rows = {r for r, _ in encoding.cell_embeddings}
        assert len(rows) <= 3

    def test_snapshot_keeps_relevant_row(self, config, tokenizer):
        table = Table(["a"], [[f"value {i}"] for i in range(10)], table_id="big")
        model = TaBert(config, tokenizer, np.random.default_rng(0), snapshot_rows=1)
        prepared = model.prepare_table(table, "value 7")
        assert prepared.cell(0, 0).value == "value 7"

    def test_no_context_prefix_snapshot(self, config, tokenizer):
        table = Table(["a"], [[f"value {i}"] for i in range(10)], table_id="big")
        model = TaBert(config, tokenizer, np.random.default_rng(0), snapshot_rows=2)
        prepared = model.prepare_table(table, "")
        assert prepared.num_rows == 2
        assert prepared.cell(0, 0).value == "value 0"

    def test_snapshot_rows_validated(self, config, tokenizer):
        with pytest.raises(ValueError):
            TaBert(config, tokenizer, np.random.default_rng(0), snapshot_rows=0)


class TestTurl:
    def test_requires_entity_vocabulary(self, tokenizer):
        config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16,
                               num_heads=2, num_entities=0)
        with pytest.raises(ValueError):
            Turl(config, tokenizer, np.random.default_rng(0))

    def test_pretraining_logits_shapes(self, config, tokenizer, wiki_tables):
        model = build("turl", config, tokenizer)
        batch, _ = model.batch(wiki_tables[:2])
        mlm, mer = model.pretraining_logits(batch)
        assert mlm.shape == (2, batch.seq_len, config.vocab_size)
        assert mer.shape == (2, batch.seq_len, config.num_entities + 1)

    def test_entity_channel_changes_encoding(self, config, tokenizer, wiki_tables):
        model = build("turl", config, tokenizer)
        table = wiki_tables[0]
        stripped = Table(table.header,
                         [[cell.text() for cell in row] for row in table.rows],
                         context=table.context, table_id=table.table_id)
        with_entities = model.encode(table).table_embedding
        without = model.encode(stripped).table_embedding
        assert not np.allclose(with_entities, without)


class TestMate:
    def test_row_head_fraction_validated(self, config, tokenizer):
        with pytest.raises(ValueError):
            Mate(config, tokenizer, np.random.default_rng(0), row_head_fraction=1.5)

    def test_mask_has_per_head_structure(self, config, tokenizer, sample_table):
        model = build("mate", config, tokenizer)
        batch, _ = model.batch([sample_table])
        mask = model.attention_mask(batch)
        assert mask.shape[1] == config.num_heads
        assert (mask[:, 0] != mask[:, -1]).any()
