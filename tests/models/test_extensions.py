"""Tests for the extension models (TABBIE, TUTA) and the numeric channel."""

import numpy as np
import pytest

from repro.models import (
    EncoderConfig,
    Tabbie,
    TableBert,
    Tuta,
    dense_mask,
    horizontal_mask,
    tree_distance_bias,
)
from repro.serialize import RowMajorSerializer, encode_features, pad_batch
from repro.tables import Table


@pytest.fixture(scope="module")
def grid(tokenizer):
    table = Table(
        ["Country", "Capital"],
        [["Australia", "Canberra"], ["France", "Paris"], ["Japan", "Tokyo"]],
    )
    serializer = RowMajorSerializer(tokenizer)
    serialized = serializer.serialize(table, context="population by country")
    batch = pad_batch([encode_features(serialized)], pad_id=0)
    return batch, serialized


def cell_start(serialized, row, col):
    return serialized.cell_spans[(row, col)][0]


class TestHorizontalMask:
    def test_same_row_visible(self, grid):
        batch, serialized = grid
        mask = horizontal_mask(batch)
        q = cell_start(serialized, 1, 0)
        k = cell_start(serialized, 1, 1)
        assert not mask[0, 0, q, k]

    def test_other_row_blocked(self, grid):
        batch, serialized = grid
        mask = horizontal_mask(batch)
        q = cell_start(serialized, 1, 0)
        k = cell_start(serialized, 2, 0)  # same column, different row
        assert mask[0, 0, q, k]

    def test_headers_visible_to_cells(self, grid):
        batch, serialized = grid
        mask = horizontal_mask(batch)
        q = cell_start(serialized, 1, 0)
        header_start, _ = serialized.header_spans[0]
        assert not mask[0, 0, q, header_start]


class TestTreeDistanceBias:
    def test_shape(self, grid):
        batch, _ = grid
        bias = tree_distance_bias(batch)
        assert bias.shape == (1, 1, batch.seq_len, batch.seq_len)

    def test_distance_ordering(self, grid):
        batch, serialized = grid
        bias = tree_distance_bias(batch, strength=2.0)[0, 0]
        q = cell_start(serialized, 1, 0)
        same_cell = bias[q, q]
        same_row = bias[q, cell_start(serialized, 1, 1)]
        unrelated = bias[q, cell_start(serialized, 2, 1)]
        assert same_cell == 0.0
        assert same_row == -2.0
        assert unrelated == -4.0

    def test_context_is_root(self, grid):
        batch, serialized = grid
        bias = tree_distance_bias(batch)[0, 0]
        ctx = serialized.context_span[0]
        q = cell_start(serialized, 2, 1)
        assert bias[q, ctx] == -1.0

    def test_strength_validated(self, grid):
        batch, _ = grid
        with pytest.raises(ValueError):
            tree_distance_bias(batch, strength=-1.0)


class TestTabbie:
    def test_encode_api(self, config, tokenizer, sample_table):
        model = Tabbie(config, tokenizer, np.random.default_rng(0))
        encoding = model.encode(sample_table)
        assert encoding.table_embedding.shape == (config.dim,)
        assert len(encoding.cell_embeddings) == 6

    def test_two_stacks_registered(self, config, tokenizer):
        model = Tabbie(config, tokenizer, np.random.default_rng(0))
        names = dict(model.named_parameters())
        assert any(name.startswith("column_encoder.") for name in names)
        assert any(name.startswith("encoder.") for name in names)

    def test_views_actually_differ(self, config, tokenizer, sample_table):
        """Averaged output must differ from either single view."""
        model = Tabbie(config, tokenizer, np.random.default_rng(0))
        batch, _ = model.batch([sample_table])
        from repro.nn import no_grad
        with no_grad():
            combined = model(batch).data
            row_only = model.encoder(model.embed(batch),
                                     mask=horizontal_mask(batch)).data
        assert not np.allclose(combined, row_only)


class TestTuta:
    def test_encode_api(self, config, tokenizer, sample_table):
        model = Tuta(config, tokenizer, np.random.default_rng(0))
        encoding = model.encode(sample_table)
        assert encoding.table_embedding.shape == (config.dim,)

    def test_strength_changes_cell_outputs(self, config, tokenizer,
                                           sample_table):
        # Note: [CLS] sits at the tree root (uniform distance to all keys),
        # so with a single layer its vector is invariant to the bias —
        # softmax is shift-invariant.  Cell tokens see varying distances.
        weak = Tuta(config, tokenizer, np.random.default_rng(0),
                    distance_strength=0.0)
        strong = Tuta(config, tokenizer, np.random.default_rng(0),
                      distance_strength=4.0)
        a = weak.encode(sample_table).cell_embeddings[(0, 0)]
        b = strong.encode(sample_table).cell_embeddings[(0, 0)]
        assert not np.allclose(a, b)

    def test_zero_strength_equals_dense(self, config, tokenizer, sample_table):
        tuta = Tuta(config, tokenizer, np.random.default_rng(0),
                    distance_strength=0.0)
        batch, _ = tuta.batch([sample_table])
        from repro.nn import no_grad
        with no_grad():
            biased = tuta(batch).data
            plain = tuta.encoder(tuta.embed(batch),
                                 mask=dense_mask(batch)).data
        np.testing.assert_allclose(biased, plain)

    def test_strength_validated(self, config, tokenizer):
        with pytest.raises(ValueError):
            Tuta(config, tokenizer, np.random.default_rng(0),
                 distance_strength=-0.5)


class TestNumericChannel:
    @pytest.fixture
    def numeric_config(self, tokenizer, kb):
        return EncoderConfig(
            vocab_size=len(tokenizer.vocab), dim=16, num_heads=2,
            num_layers=1, hidden_dim=32, max_position=128,
            num_entities=kb.num_entities, numeric_features=True,
        )

    def test_numeric_features_extracted(self, tokenizer, sample_table,
                                        numeric_config):
        model = TableBert(numeric_config, tokenizer, np.random.default_rng(0))
        batch, serialized = model.batch([sample_table])
        start, end = serialized[0].cell_spans[(0, 2)]  # 25.69
        assert batch.numeric_features[0, start, 0] == 1.0
        assert batch.numeric_features[0, start, 2] == pytest.approx(
            np.log1p(25.69))
        text_start, _ = serialized[0].cell_spans[(0, 0)]  # Australia
        assert batch.numeric_features[0, text_start, 0] == 0.0

    def test_channel_changes_encoding(self, tokenizer, sample_table,
                                      numeric_config, config):
        with_numeric = TableBert(numeric_config, tokenizer,
                                 np.random.default_rng(0))
        encoding = with_numeric.encode(sample_table)
        doubled = sample_table.replace_cell(0, 2, 999999.0)
        changed = with_numeric.encode(doubled)
        moved = np.linalg.norm(
            encoding.cell_embeddings[(0, 2)] - changed.cell_embeddings[(0, 2)])
        assert moved > 0

    def test_projection_only_when_enabled(self, tokenizer, config,
                                          numeric_config):
        plain = TableBert(config, tokenizer, np.random.default_rng(0))
        numeric = TableBert(numeric_config, tokenizer, np.random.default_rng(0))
        assert not hasattr(plain, "numeric_projection")
        assert numeric.num_parameters() > 0
        names = dict(numeric.named_parameters())
        assert "numeric_projection.weight" in names

    def test_magnitude_distinguishable(self, tokenizer, numeric_config):
        """Same-digit-pattern values of different magnitude must separate
        in the numeric channel (the point of the extension)."""
        model = TableBert(numeric_config, tokenizer, np.random.default_rng(0))
        small = Table(["v"], [[1.0]])
        large = Table(["v"], [[1000000.0]])
        a = model.encode(small).cell_embeddings[(0, 0)]
        b = model.encode(large).cell_embeddings[(0, 0)]
        assert np.linalg.norm(a - b) > 1e-6
