"""Tests for the structural attention mask builders."""

import numpy as np
import pytest

from repro.models import (
    attention_flops_proxy,
    dense_mask,
    mate_head_masks,
    vertical_mask,
    visibility_mask,
)
from repro.serialize import RowMajorSerializer, TokenRole, encode_features, pad_batch
from repro.tables import Table


@pytest.fixture(scope="module")
def batch(tokenizer):
    table = Table(
        ["Country", "Capital"],
        [["Australia", "Canberra"], ["France", "Paris"], ["Japan", "Tokyo"]],
    )
    serializer = RowMajorSerializer(tokenizer)
    serialized = serializer.serialize(table, context="population by country")
    features = encode_features(serialized)
    padded = pad_batch([features, features], pad_id=0)
    return padded, serialized


def find_token(serialized, row, col):
    start, _ = serialized.cell_spans[(row, col)]
    return start


class TestDenseMask:
    def test_everything_visible_except_padding(self, batch):
        padded, _ = batch
        mask = dense_mask(padded)
        assert mask.shape == (2, 1, padded.seq_len, padded.seq_len)
        valid = padded.token_validity()
        assert not mask[0, 0][np.ix_(valid[0], valid[0])].any()


class TestVisibilityMask:
    def test_cell_sees_own_row(self, batch):
        padded, serialized = batch
        mask = visibility_mask(padded)
        q = find_token(serialized, 1, 0)  # france
        k = find_token(serialized, 1, 1)  # paris (same row)
        assert not mask[0, 0, q, k]

    def test_cell_sees_own_column(self, batch):
        padded, serialized = batch
        mask = visibility_mask(padded)
        q = find_token(serialized, 0, 1)  # canberra
        k = find_token(serialized, 2, 1)  # tokyo (same column)
        assert not mask[0, 0, q, k]

    def test_cell_blocked_from_unrelated_cell(self, batch):
        padded, serialized = batch
        mask = visibility_mask(padded)
        q = find_token(serialized, 0, 0)  # australia
        k = find_token(serialized, 1, 1)  # paris (different row and column)
        assert mask[0, 0, q, k]

    def test_context_sees_everything(self, batch):
        padded, serialized = batch
        mask = visibility_mask(padded)
        ctx = serialized.context_span[0]
        valid = padded.token_validity()[0]
        assert not mask[0, 0, ctx][valid].any()

    def test_cell_sees_context(self, batch):
        padded, serialized = batch
        mask = visibility_mask(padded)
        q = find_token(serialized, 1, 1)
        ctx = serialized.context_span[0]
        assert not mask[0, 0, q, ctx]

    def test_cell_sees_header_of_its_column(self, batch):
        padded, serialized = batch
        mask = visibility_mask(padded)
        q = find_token(serialized, 2, 1)
        header_start, _ = serialized.header_spans[1]
        assert not mask[0, 0, q, header_start]

    def test_headers_see_each_other(self, batch):
        padded, serialized = batch
        mask = visibility_mask(padded)
        h0, _ = serialized.header_spans[0]
        h1, _ = serialized.header_spans[1]
        assert not mask[0, 0, h0, h1]


class TestVerticalMask:
    def test_same_column_visible(self, batch):
        padded, serialized = batch
        mask = vertical_mask(padded)
        q = find_token(serialized, 0, 0)
        k = find_token(serialized, 2, 0)
        assert not mask[0, 0, q, k]

    def test_same_row_blocked(self, batch):
        padded, serialized = batch
        mask = vertical_mask(padded)
        q = find_token(serialized, 0, 0)
        k = find_token(serialized, 0, 1)
        assert mask[0, 0, q, k]

    def test_context_global(self, batch):
        padded, serialized = batch
        mask = vertical_mask(padded)
        q = find_token(serialized, 0, 0)
        ctx = serialized.context_span[0]
        assert not mask[0, 0, q, ctx]


class TestMateHeadMasks:
    def test_shape_has_head_axis(self, batch):
        padded, _ = batch
        mask = mate_head_masks(padded, num_heads=4)
        assert mask.shape == (2, 4, padded.seq_len, padded.seq_len)

    def test_row_heads_see_rows_not_columns(self, batch):
        padded, serialized = batch
        mask = mate_head_masks(padded, num_heads=4, row_head_fraction=0.5)
        q = find_token(serialized, 1, 0)
        same_row = find_token(serialized, 1, 1)
        same_col = find_token(serialized, 2, 0)
        assert not mask[0, 0, q, same_row]   # head 0 = row head
        assert mask[0, 0, q, same_col]

    def test_column_heads_see_columns_not_rows(self, batch):
        padded, serialized = batch
        mask = mate_head_masks(padded, num_heads=4, row_head_fraction=0.5)
        q = find_token(serialized, 1, 0)
        same_row = find_token(serialized, 1, 1)
        same_col = find_token(serialized, 2, 0)
        assert mask[0, 3, q, same_row]       # head 3 = column head
        assert not mask[0, 3, q, same_col]

    def test_head_count_validated(self, batch):
        padded, _ = batch
        with pytest.raises(ValueError):
            mate_head_masks(padded, num_heads=0)


class TestFlopsProxy:
    def test_sparse_cheaper_than_dense(self, batch):
        padded, _ = batch
        heads = 4
        dense = np.repeat(dense_mask(padded), heads, axis=1)
        sparse = mate_head_masks(padded, num_heads=heads)
        assert attention_flops_proxy(sparse) < attention_flops_proxy(dense)

    def test_visibility_between_dense_and_vertical(self, batch):
        padded, _ = batch
        dense = attention_flops_proxy(dense_mask(padded))
        vis = attention_flops_proxy(visibility_mask(padded))
        vert = attention_flops_proxy(vertical_mask(padded))
        assert vert <= vis <= dense
