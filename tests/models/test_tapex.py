"""Tests for the TAPEX encoder-decoder."""

import numpy as np
import pytest

from repro.models import Tapex
from repro.nn import Adam


@pytest.fixture
def model(config, tokenizer):
    return Tapex(config, tokenizer, np.random.default_rng(0), max_answer_tokens=8)


class TestAnswerCollation:
    def test_answer_ends_with_eos(self, model, tokenizer):
        ids = model.encode_answer("paris")
        assert ids[-1] == tokenizer.vocab.eos_id

    def test_answer_truncated_to_budget(self, model):
        ids = model.encode_answer("a b c d e f g h i j k l m")
        assert len(ids) <= model.max_answer_tokens

    def test_collate_shapes_and_alignment(self, model, tokenizer):
        inputs, targets = model.collate_answers(["paris", "canberra city"])
        assert inputs.shape == targets.shape
        assert inputs[0, 0] == tokenizer.vocab.bos_id
        # Shifted: target[t] is predicted from input[t].
        assert targets[0, 0] == inputs[0, 1]

    def test_padding_ignored_in_targets(self, model):
        inputs, targets = model.collate_answers(["x", "much longer answer here"])
        assert (targets[0] == -100).any()


class TestForward:
    def test_logit_shapes(self, model, sample_table):
        inputs, _ = model.collate_answers(["paris"])
        batch, _ = model.encoder.batch([sample_table], ["what is the capital"])
        logits = model.forward(batch, inputs)
        assert logits.shape == (1, inputs.shape[1], model.config.vocab_size)

    def test_loss_positive_scalar(self, model, sample_table):
        loss = model.loss([sample_table], ["what is the capital of france"], ["paris"])
        assert loss.data.shape == ()
        assert float(loss.data) > 0


class TestGeneration:
    def test_generate_returns_string(self, model, sample_table):
        answer = model.generate(sample_table, "what is the capital of france")
        assert isinstance(answer, str)

    def test_generate_restores_training_mode(self, model, sample_table):
        model.train()
        model.generate(sample_table, "anything")
        assert model.training

    def test_overfits_single_pair(self, config, tokenizer, sample_table):
        """The executor must be able to memorize one (query, answer) pair —
        the smoke test that seq2seq training works end to end."""
        model = Tapex(config, tokenizer, np.random.default_rng(1), max_answer_tokens=6)
        optimizer = Adam(model.parameters(), lr=5e-3)
        query, answer = "what is the capital of france", "paris"
        for _ in range(40):
            optimizer.zero_grad()
            loss = model.loss([sample_table], [query], [answer])
            loss.backward()
            optimizer.step()
        assert model.generate(sample_table, query) == "paris"


class TestBeamSearch:
    def test_returns_sorted_beams(self, model, sample_table):
        beams = model.generate_beam(sample_table, "what is the capital",
                                    beam_width=3)
        assert len(beams) <= 3
        scores = [s for _, s in beams]
        assert scores == sorted(scores, reverse=True)

    def test_beam_width_validated(self, model, sample_table):
        with pytest.raises(ValueError):
            model.generate_beam(sample_table, "q", beam_width=0)

    def test_beam_one_matches_greedy(self, model, sample_table):
        greedy = model.generate(sample_table, "what is the capital")
        (beam_text, _), = model.generate_beam(sample_table,
                                              "what is the capital",
                                              beam_width=1)
        assert beam_text == greedy

    def test_trained_model_gold_in_beam(self, config, tokenizer, sample_table):
        from repro.nn import Adam
        model = Tapex(config, tokenizer, np.random.default_rng(1),
                      max_answer_tokens=6)
        optimizer = Adam(model.parameters(), lr=5e-3)
        query, answer = "what is the capital of france", "paris"
        for _ in range(40):
            optimizer.zero_grad()
            loss = model.loss([sample_table], [query], [answer])
            loss.backward()
            optimizer.step()
        beams = model.generate_beam(sample_table, query, beam_width=3)
        assert any(text == "paris" for text, _ in beams)

    def test_restores_training_mode(self, model, sample_table):
        model.train()
        model.generate_beam(sample_table, "q", beam_width=2)
        assert model.training
