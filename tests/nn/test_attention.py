"""Tests for multi-head attention and mask builders."""

import numpy as np
import pytest

from repro.nn import MultiHeadAttention, Tensor, causal_mask, padding_mask

from tests.gradcheck import check_gradient


def rng():
    return np.random.default_rng(3)


class TestMultiHeadAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(8, 2, rng())
        out = attn(Tensor(rng().normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_dim_divisibility_checked(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng())

    def test_attention_weights_recorded(self):
        attn = MultiHeadAttention(8, 2, rng())
        attn(Tensor(rng().normal(size=(1, 4, 8))))
        assert attn.last_attention.shape == (1, 2, 4, 4)
        np.testing.assert_allclose(attn.last_attention.sum(axis=-1), 1.0, atol=1e-9)

    def test_mask_blocks_positions(self):
        attn = MultiHeadAttention(8, 2, rng())
        mask = np.zeros((1, 1, 4, 4), dtype=bool)
        mask[..., 2] = True  # nothing may attend to position 2
        attn(Tensor(rng().normal(size=(1, 4, 8))), mask=mask)
        assert np.all(attn.last_attention[..., 2] < 1e-6)

    def test_causal_mask_applied(self):
        attn = MultiHeadAttention(8, 2, rng())
        attn(Tensor(rng().normal(size=(1, 5, 8))), mask=causal_mask(5))
        weights = attn.last_attention[0, 0]
        upper = np.triu(weights, k=1)
        assert np.all(upper < 1e-6)

    def test_2d_mask_broadcast(self):
        attn = MultiHeadAttention(8, 2, rng())
        out = attn(Tensor(rng().normal(size=(2, 3, 8))), mask=causal_mask(3))
        assert out.shape == (2, 3, 8)

    def test_cross_attention_shape(self):
        attn = MultiHeadAttention(8, 2, rng())
        x = Tensor(rng().normal(size=(2, 3, 8)))
        memory = Tensor(rng().normal(size=(2, 7, 8)))
        out = attn(x, memory=memory)
        assert out.shape == (2, 3, 8)
        assert attn.last_attention.shape == (2, 2, 3, 7)

    def test_gradient_flows(self):
        attn = MultiHeadAttention(4, 2, rng())
        check_gradient(lambda x: attn(x), rng().normal(size=(1, 3, 4)), atol=1e-4)

    def test_gradient_with_mask(self):
        attn = MultiHeadAttention(4, 2, rng())
        mask = causal_mask(3)
        check_gradient(lambda x: attn(x, mask=mask), rng().normal(size=(1, 3, 4)), atol=1e-4)

    def test_fully_masked_row_is_uniform(self):
        # A row with every key blocked degrades to uniform attention; it must
        # not produce NaNs.
        attn = MultiHeadAttention(8, 1, rng())
        mask = np.zeros((1, 1, 2, 2), dtype=bool)
        mask[0, 0, 0, :] = True
        out = attn(Tensor(rng().normal(size=(1, 2, 8))), mask=mask)
        assert np.all(np.isfinite(out.data))


class TestMaskBuilders:
    def test_causal_mask_shape_and_content(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert not mask[2, 2] and not mask[2, 1]
        assert mask[1, 2]

    def test_padding_mask(self):
        mask = padding_mask(np.array([2, 4]), seq_len=4)
        assert mask.shape == (2, 1, 1, 4)
        np.testing.assert_array_equal(mask[0, 0, 0], [False, False, True, True])
        np.testing.assert_array_equal(mask[1, 0, 0], [False, False, False, False])


class TestAttentionBias:
    def test_bias_changes_weights(self):
        attn = MultiHeadAttention(8, 2, rng())
        x = Tensor(rng().normal(size=(1, 4, 8)))
        attn(x)
        base = attn.last_attention.copy()
        bias = np.zeros((1, 1, 4, 4))
        bias[..., 0] = 5.0  # strongly favour key 0
        attn(x, bias=bias)
        assert attn.last_attention[..., 0].mean() > base[..., 0].mean()

    def test_zero_bias_is_identity(self):
        attn = MultiHeadAttention(8, 2, rng())
        x = Tensor(rng().normal(size=(1, 4, 8)))
        attn(x)
        base = attn.last_attention.copy()
        attn(x, bias=np.zeros((1, 1, 4, 4)))
        np.testing.assert_allclose(attn.last_attention, base)

    def test_gradient_with_bias(self):
        attn = MultiHeadAttention(4, 2, rng())
        bias = rng().normal(size=(1, 1, 3, 3))
        check_gradient(lambda x: attn(x, bias=bias),
                       rng().normal(size=(1, 3, 4)), atol=1e-4)

    def test_bias_and_mask_compose(self):
        attn = MultiHeadAttention(8, 2, rng())
        x = Tensor(rng().normal(size=(1, 3, 8)))
        bias = np.full((1, 1, 3, 3), 2.0)
        attn(x, mask=causal_mask(3), bias=bias)
        upper = np.triu(attn.last_attention[0, 0], k=1)
        assert np.all(upper < 1e-6)
