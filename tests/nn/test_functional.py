"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    binary_cross_entropy_with_logits,
    cosine_similarity,
    cross_entropy,
    in_batch_contrastive_loss,
    mse_loss,
)

from tests.gradcheck import check_gradient


def rng():
    return np.random.default_rng(5)


class TestCrossEntropy:
    def test_matches_manual_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        loss = cross_entropy(Tensor(logits), np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert float(loss.data) == pytest.approx(expected)

    def test_gradient(self):
        targets = np.array([0, 2, 1])
        check_gradient(lambda x: cross_entropy(x, targets), rng().normal(size=(3, 4)))

    def test_ignore_index_excluded(self):
        logits = rng().normal(size=(4, 3))
        targets = np.array([0, -100, 2, -100])
        loss_masked = cross_entropy(Tensor(logits), targets, ignore_index=-100)
        loss_subset = cross_entropy(Tensor(logits[[0, 2]]), np.array([0, 2]))
        assert float(loss_masked.data) == pytest.approx(float(loss_subset.data))

    def test_all_ignored_returns_zero(self):
        logits = Tensor(rng().normal(size=(2, 3)))
        loss = cross_entropy(logits, np.array([-100, -100]), ignore_index=-100)
        assert float(loss.data) == 0.0

    def test_3d_logits(self):
        logits = rng().normal(size=(2, 5, 4))
        targets = rng().integers(0, 4, size=(2, 5))
        loss = cross_entropy(Tensor(logits), targets)
        assert loss.data.shape == ()
        assert float(loss.data) > 0

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 0] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 0]))
        assert float(loss.data) < 1e-8


class TestBCE:
    def test_matches_manual(self):
        logits = np.array([0.0, 2.0, -2.0])
        targets = np.array([1.0, 1.0, 0.0])
        loss = binary_cross_entropy_with_logits(Tensor(logits), targets)
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_gradient(self):
        targets = np.array([1.0, 0.0, 1.0])
        check_gradient(
            lambda x: binary_cross_entropy_with_logits(x, targets),
            rng().normal(size=3),
        )

    def test_stable_for_extreme_logits(self):
        loss = binary_cross_entropy_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])
        )
        assert np.isfinite(float(loss.data))
        assert float(loss.data) < 1e-6


class TestMSE:
    def test_value(self):
        loss = mse_loss(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(5.0)

    def test_gradient(self):
        targets = rng().normal(size=(2, 3))
        check_gradient(lambda x: mse_loss(x, targets), rng().normal(size=(2, 3)))


class TestCosine:
    def test_identical_rows_give_one(self):
        x = rng().normal(size=(3, 4))
        sims = cosine_similarity(Tensor(x), Tensor(x.copy()))
        np.testing.assert_allclose(sims.data, np.ones(3), atol=1e-6)

    def test_orthogonal_rows_give_zero(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        np.testing.assert_allclose(cosine_similarity(a, b).data, [0.0], atol=1e-8)


class TestContrastive:
    def test_aligned_pairs_low_loss(self):
        x = rng().normal(size=(6, 8))
        aligned = in_batch_contrastive_loss(Tensor(x), Tensor(x.copy()))
        shuffled = in_batch_contrastive_loss(Tensor(x), Tensor(x[::-1].copy()))
        assert float(aligned.data) < float(shuffled.data)

    def test_gradient(self):
        keys = Tensor(rng().normal(size=(3, 4)))
        check_gradient(
            lambda x: in_batch_contrastive_loss(x, keys),
            rng().normal(size=(3, 4)),
            atol=1e-4,
        )
