"""inference_mode: tape-free forwards, bit-identical to grad mode."""

import numpy as np
import pytest

from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import MODEL_CLASSES, EncoderConfig
from repro.nn import (
    Linear,
    Tensor,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
)
from repro.text import train_tokenizer


class TestFlagSemantics:
    def test_default_off(self):
        assert not is_inference_mode()
        assert is_grad_enabled()

    def test_enters_and_restores(self):
        with inference_mode():
            assert is_inference_mode()
            assert not is_grad_enabled()
        assert not is_inference_mode()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_mode():
                raise RuntimeError("boom")
        assert not is_inference_mode()
        assert is_grad_enabled()

    def test_nesting(self):
        with inference_mode():
            with inference_mode():
                assert is_inference_mode()
            assert is_inference_mode()
        assert not is_inference_mode()


class TestTapeFree:
    def test_no_parents_no_backward(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with inference_mode():
            y = (x * 2.0).relu().sum()
        assert y._parents == ()
        assert y._backward is None
        assert not y.requires_grad

    def test_module_inference_context(self):
        layer = Linear(4, 2, np.random.default_rng(0))
        layer.train()
        with layer.inference() as entered:
            assert entered is layer
            assert not layer.training
            assert is_inference_mode()
            out = layer(Tensor(np.ones((3, 4))))
        assert layer.training          # prior mode restored
        assert out._parents == ()

    def test_values_match_grad_mode(self):
        rng = np.random.default_rng(1)
        layer = Linear(8, 5, np.random.default_rng(0))
        x = Tensor(rng.normal(size=(4, 8)))
        expected = layer(x).data
        with inference_mode():
            actual = layer(x).data
        np.testing.assert_array_equal(actual, expected)


class TestBitIdenticalLogits:
    """Every model family forwards bit-identically with the tape off."""

    @pytest.fixture(scope="class")
    def setup(self):
        tables = generate_wiki_corpus(KnowledgeBase(seed=0), 4, seed=0)
        texts = []
        for table in tables:
            texts.append(table.context.text())
            texts.append(" ".join(table.header))
            texts.extend(cell.text() for _, _, cell in table.iter_cells())
        tokenizer = train_tokenizer(texts, vocab_size=400)
        config = EncoderConfig(
            vocab_size=len(tokenizer.vocab), dim=16, num_heads=2,
            num_layers=1, hidden_dim=32, max_position=160, num_entities=64,
        )
        return tables, tokenizer, config

    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_model_family(self, setup, name):
        tables, tokenizer, config = setup
        model = MODEL_CLASSES[name](config, tokenizer,
                                    np.random.default_rng(0))
        # TAPEX is an encoder-decoder wrapper; its table encoder half is
        # the forward the serving path exercises.
        encoder = model.encoder if name == "tapex" else model
        encoder.eval()
        batch, _ = encoder.batch(tables[:2])
        expected = encoder(batch)
        with inference_mode():
            actual = encoder(batch)
        np.testing.assert_array_equal(actual.data, expected.data)
        assert actual._parents == ()
        assert actual._backward is None
