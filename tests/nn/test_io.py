"""Tests for checkpoint save/load and crash-safe IO."""

import json

import numpy as np
import pytest

from repro.nn import (
    CheckpointError,
    Linear,
    Module,
    Tensor,
    latest_valid_checkpoint,
    load_checkpoint,
    read_npz_verified,
    save_checkpoint,
    verify_checkpoint,
    write_npz_atomic,
)
from repro.nn.io import manifest_path


class SmallNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        self.layer = Linear(3, 2, np.random.default_rng(seed))

    def forward(self, x):
        return self.layer(x)


class TestCheckpointIO:
    def test_roundtrip(self, tmp_path):
        source, target = SmallNet(seed=1), SmallNet(seed=2)
        path = save_checkpoint(source, tmp_path / "model")
        load_checkpoint(target, path)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_suffix_added(self, tmp_path):
        path = save_checkpoint(SmallNet(), tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_config_sidecar(self, tmp_path):
        config = {"dim": 3, "name": "small"}
        save_checkpoint(SmallNet(), tmp_path / "model", config=config)
        loaded = load_checkpoint(SmallNet(), tmp_path / "model")
        assert loaded == config

    def test_no_config_returns_none(self, tmp_path):
        save_checkpoint(SmallNet(), tmp_path / "model")
        assert load_checkpoint(SmallNet(), tmp_path / "model") is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(SmallNet(), tmp_path / "absent")

    def test_creates_parent_dirs(self, tmp_path):
        path = save_checkpoint(SmallNet(), tmp_path / "deep" / "nested" / "model")
        assert path.exists()


class TestCrashSafety:
    def test_manifest_sidecar_written(self, tmp_path):
        path = save_checkpoint(SmallNet(), tmp_path / "model")
        manifest = json.loads(manifest_path(path).read_text())
        assert manifest["file"] == "model.npz"
        assert manifest["bytes"] == path.stat().st_size
        assert len(manifest["sha256"]) == 64
        assert "layer.weight" in manifest["arrays"]

    def test_no_tmp_file_left_behind(self, tmp_path):
        save_checkpoint(SmallNet(), tmp_path / "model")
        assert not list(tmp_path.glob("*.tmp"))

    def test_truncated_archive_detected(self, tmp_path):
        path = save_checkpoint(SmallNet(), tmp_path / "model")
        path.write_bytes(path.read_bytes()[:50])
        assert not verify_checkpoint(path)
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(SmallNet(), path)

    def test_bitflip_detected_via_digest(self, tmp_path):
        path = save_checkpoint(SmallNet(), tmp_path / "model")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert not verify_checkpoint(path)
        with pytest.raises(CheckpointError):
            read_npz_verified(path)

    def test_legacy_archive_without_manifest_loads(self, tmp_path):
        source = SmallNet(seed=1)
        path = tmp_path / "legacy.npz"
        np.savez(path, **source.state_dict())
        assert verify_checkpoint(path)
        target = SmallNet(seed=2)
        load_checkpoint(target, path)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_latest_valid_skips_corrupt_newest(self, tmp_path):
        old = write_npz_atomic(tmp_path / "ckpt-001.npz",
                               {"x": np.zeros(3)})
        newest = write_npz_atomic(tmp_path / "ckpt-002.npz",
                                  {"x": np.ones(3)})
        newest.write_bytes(b"garbage")
        assert latest_valid_checkpoint(tmp_path, "ckpt-*.npz") == old

    def test_latest_valid_empty_dir(self, tmp_path):
        assert latest_valid_checkpoint(tmp_path) is None
        assert latest_valid_checkpoint(tmp_path / "absent") is None


class BiggerNet(Module):
    def __init__(self, seed=0, out=2):
        super().__init__()
        self.layer = Linear(3, out, np.random.default_rng(seed))
        self.extra = Linear(out, 1, np.random.default_rng(seed))


class TestStateMismatchErrors:
    def test_missing_and_unexpected_keys_listed(self, tmp_path):
        path = save_checkpoint(SmallNet(), tmp_path / "model")
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(BiggerNet(), path)
        message = str(excinfo.value)
        assert "missing keys" in message
        assert "extra.weight" in message

    def test_shape_mismatch_listed(self, tmp_path):
        path = save_checkpoint(BiggerNet(out=2), tmp_path / "model")
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(BiggerNet(out=4), path)
        message = str(excinfo.value)
        assert "shape mismatches" in message
        assert "layer.weight" in message
