"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Tensor, load_checkpoint, save_checkpoint


class SmallNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        self.layer = Linear(3, 2, np.random.default_rng(seed))

    def forward(self, x):
        return self.layer(x)


class TestCheckpointIO:
    def test_roundtrip(self, tmp_path):
        source, target = SmallNet(seed=1), SmallNet(seed=2)
        path = save_checkpoint(source, tmp_path / "model")
        load_checkpoint(target, path)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_suffix_added(self, tmp_path):
        path = save_checkpoint(SmallNet(), tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_config_sidecar(self, tmp_path):
        config = {"dim": 3, "name": "small"}
        save_checkpoint(SmallNet(), tmp_path / "model", config=config)
        loaded = load_checkpoint(SmallNet(), tmp_path / "model")
        assert loaded == config

    def test_no_config_returns_none(self, tmp_path):
        save_checkpoint(SmallNet(), tmp_path / "model")
        assert load_checkpoint(SmallNet(), tmp_path / "model") is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(SmallNet(), tmp_path / "absent")

    def test_creates_parent_dirs(self, tmp_path):
        path = save_checkpoint(SmallNet(), tmp_path / "deep" / "nested" / "model")
        assert path.exists()
