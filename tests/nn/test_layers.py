"""Tests for Linear, Embedding, LayerNorm layers (values + gradients)."""

import numpy as np
import pytest

from repro.nn import Embedding, LayerNorm, Linear, Tensor

from tests.gradcheck import check_gradient


def rng():
    return np.random.default_rng(11)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng())
        out = layer(Tensor(np.ones((2, 7, 5))))
        assert out.shape == (2, 7, 3)

    def test_matches_manual_affine(self):
        layer = Linear(4, 2, rng())
        x = rng().normal(size=(3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(4, 2, rng(), bias=False)
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_gradient_through_layer(self):
        layer = Linear(4, 3, rng())
        check_gradient(lambda x: layer(x), rng().normal(size=(2, 4)))

    def test_weight_gradient(self):
        layer = Linear(3, 2, rng())
        x = Tensor(rng().normal(size=(5, 3)))
        layer(x).sum().backward()
        expected = x.data.T @ np.ones((5, 2))
        np.testing.assert_allclose(layer.weight.grad, expected)
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 5.0))


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 6, rng())
        out = emb(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 6)

    def test_lookup_values(self):
        emb = Embedding(10, 4, rng())
        out = emb(np.array([3, 3]))
        np.testing.assert_array_equal(out.data[0], emb.weight.data[3])
        np.testing.assert_array_equal(out.data[1], emb.weight.data[3])

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, rng())
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_for_repeats(self):
        emb = Embedding(5, 3, rng())
        out = emb(np.array([2, 2, 4]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[4], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0, 0.0])


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        norm = LayerNorm(8)
        x = rng().normal(loc=5.0, scale=3.0, size=(4, 8))
        out = norm(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gain_bias_applied(self):
        norm = LayerNorm(4)
        norm.gain.data[...] = 2.0
        norm.bias.data[...] = 1.0
        x = rng().normal(size=(3, 4))
        out = norm(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(3), atol=1e-6)

    def test_gradient(self):
        norm = LayerNorm(6)
        check_gradient(lambda x: norm(x), rng().normal(size=(2, 6)), atol=1e-4)

    def test_constant_input_stable(self):
        norm = LayerNorm(4)
        out = norm(Tensor(np.full((2, 4), 3.0)))
        assert np.all(np.isfinite(out.data))
