"""Tests for the module system: registration, modes, state IO."""

import numpy as np
import pytest

from repro.nn import Dropout, LayerNorm, Linear, Module, ModuleList, Parameter, Tensor


def rng():
    return np.random.default_rng(7)


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        r = rng()
        self.first = Linear(4, 8, r)
        self.second = Linear(8, 2, r)
        self.norm = LayerNorm(2)

    def forward(self, x):
        return self.norm(self.second(self.first(x).relu()))


class TestRegistration:
    def test_named_parameters_dotted(self):
        model = TinyModel()
        names = dict(model.named_parameters())
        assert "first.weight" in names
        assert "second.bias" in names
        assert "norm.gain" in names

    def test_parameters_unique(self):
        model = TinyModel()
        shared = model.first
        model.alias = shared  # same module registered twice
        params = list(model.parameters())
        assert len(params) == len({id(p) for p in params})

    def test_num_parameters(self):
        model = TinyModel()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 2 + 2

    def test_modules_traversal(self):
        model = TinyModel()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 2
        assert "LayerNorm" in kinds

    def test_module_list(self):
        layers = ModuleList([Linear(2, 2, rng()) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers.named_parameters())) == 6
        assert layers[1] is list(iter(layers))[1]


class TestModes:
    def test_train_eval_propagate(self):
        model = TinyModel()
        model.dropout = Dropout(0.5, rng())
        model.eval()
        assert not model.dropout.training
        model.train()
        assert model.dropout.training

    def test_dropout_identity_in_eval(self):
        drop = Dropout(0.9, rng())
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_dropout_scales_in_train(self):
        drop = Dropout(0.5, rng())
        x = Tensor(np.ones((2000,)))
        out = drop(x).data
        # Inverted dropout keeps expectation ~1.
        assert abs(out.mean() - 1.0) < 0.1
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}

    def test_dropout_validates_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0, rng())


class TestStateIO:
    def test_state_dict_roundtrip(self):
        model_a, model_b = TinyModel(), TinyModel()
        model_b.first.weight.data[...] = 0.0
        model_b.load_state_dict(model_a.state_dict())
        np.testing.assert_array_equal(model_b.first.weight.data, model_a.first.weight.data)

    def test_state_dict_copies(self):
        model = TinyModel()
        state = model.state_dict()
        state["first.weight"][...] = 99.0
        assert not np.any(model.first.weight.data == 99.0)

    def test_load_rejects_missing(self):
        model = TinyModel()
        state = model.state_dict()
        del state["first.weight"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_unexpected(self):
        model = TinyModel()
        state = model.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        model = TinyModel()
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        model = TinyModel()
        x = Tensor(np.ones((3, 4)))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestParameter:
    def test_parameter_requires_grad(self):
        p = Parameter(np.zeros((2, 2)))
        assert p.requires_grad

    def test_parameter_dtype_float64(self):
        p = Parameter(np.zeros((2, 2), dtype=np.float32))
        assert p.dtype == np.float64
