"""Tests for optimizers, gradient clipping and LR schedules."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    ConstantSchedule,
    CosineSchedule,
    LinearWarmupSchedule,
    Parameter,
    clip_gradients,
)


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def minimize(optimizer, param, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_minimizes_quadratic(self):
        p = quadratic_param()
        assert abs(minimize(SGD([p], lr=0.1), p, 100)) < 1e-4

    def test_momentum_accelerates(self):
        p_plain, p_momentum = quadratic_param(), quadratic_param()
        plain = abs(minimize(SGD([p_plain], lr=0.01), p_plain, 30))
        fast = abs(minimize(SGD([p_momentum], lr=0.01, momentum=0.9), p_momentum, 30))
        assert fast < plain

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_parameters_without_grad(self):
        p, untouched = quadratic_param(), quadratic_param()
        opt = SGD([p, untouched], lr=0.1)
        (p * p).sum().backward()
        opt.step()
        assert untouched.data[0] == 5.0


class TestAdam:
    def test_minimizes_quadratic(self):
        p = quadratic_param()
        assert abs(minimize(Adam([p], lr=0.3), p, 200)) < 1e-3

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero gradient: only decay acts
        opt.step()
        assert p.data[0] < 1.0

    def test_bias_correction_first_step(self):
        # With bias correction the very first Adam step is ~lr regardless of
        # gradient magnitude.
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        (p * 1000.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.data[0], -0.1, rtol=1e-4)


class TestClipGradients:
    def test_norm_reported_and_clipped(self):
        p = Parameter(np.array([3.0, 4.0]))
        p.grad = np.array([3.0, 4.0])
        norm = clip_gradients([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_small_gradients_untouched(self):
        p = Parameter(np.array([0.1]))
        p.grad = np.array([0.1])
        clip_gradients([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.1])

    def test_handles_missing_gradients(self):
        p = Parameter(np.array([1.0]))
        assert clip_gradients([p], max_norm=1.0) == 0.0


class TestSchedules:
    def test_constant(self):
        sched = ConstantSchedule(0.01)
        assert sched(0) == sched(1000) == 0.01

    def test_linear_warmup_rises_then_decays(self):
        sched = LinearWarmupSchedule(lr=1.0, warmup_steps=10, total_steps=110)
        assert sched(0) < sched(5) < sched(9)
        assert sched(9) == pytest.approx(1.0)
        assert sched(60) == pytest.approx(0.5)
        assert sched(110) == 0.0

    def test_linear_warmup_validates(self):
        with pytest.raises(ValueError):
            LinearWarmupSchedule(lr=1.0, warmup_steps=10, total_steps=5)

    def test_cosine_endpoints(self):
        sched = CosineSchedule(lr=1.0, total_steps=100, min_lr=0.1)
        assert sched(0) == pytest.approx(1.0)
        assert sched(100) == pytest.approx(0.1)
        assert sched(50) == pytest.approx(0.55)


class TestOptimizerStateIO:
    def test_adam_state_roundtrip_is_bit_identical(self):
        def run(steps_before_transfer):
            param = quadratic_param()
            optimizer = Adam([param], lr=0.1)
            minimize(optimizer, param, steps_before_transfer)
            return param, optimizer

        # Uninterrupted: 10 steps straight.
        straight_param, straight_opt = run(10)

        # Interrupted: 5 steps, state transfer into a fresh optimizer, 5 more.
        mid_param, mid_opt = run(5)
        resumed_param = Parameter(mid_param.data.copy())
        resumed_opt = Adam([resumed_param], lr=0.1)
        resumed_opt.load_state_dict(mid_opt.state_dict())
        minimize(resumed_opt, resumed_param, 5)

        np.testing.assert_array_equal(straight_param.data, resumed_param.data)
        assert resumed_opt.step_count == straight_opt.step_count
        for slot in ("_m", "_v"):
            for lhs, rhs in zip(straight_opt.state_dict()[slot],
                                resumed_opt.state_dict()[slot]):
                np.testing.assert_array_equal(lhs, rhs)

    def test_sgd_velocity_roundtrip(self):
        param = quadratic_param()
        optimizer = SGD([param], lr=0.05, momentum=0.9)
        minimize(optimizer, param, 3)
        state = optimizer.state_dict()
        assert state["step_count"] == 3

        other_param = Parameter(param.data.copy())
        other = SGD([other_param], lr=0.05, momentum=0.9)
        other.load_state_dict(state)
        np.testing.assert_array_equal(other._velocity[0],
                                      optimizer._velocity[0])

    def test_state_dict_returns_copies(self):
        param = quadratic_param()
        optimizer = Adam([param], lr=0.1)
        minimize(optimizer, param, 2)
        state = optimizer.state_dict()
        state["_m"][0][...] = 999.0
        assert not np.array_equal(optimizer._m[0], state["_m"][0])

    def test_load_rejects_wrong_slot_count(self):
        optimizer = Adam([quadratic_param()], lr=0.1)
        donor = Adam([quadratic_param(), quadratic_param()], lr=0.1)
        with pytest.raises(ValueError, match="slots"):
            optimizer.load_state_dict(donor.state_dict())

    def test_load_rejects_wrong_shapes(self):
        optimizer = Adam([Parameter(np.zeros(3))], lr=0.1)
        donor = Adam([Parameter(np.zeros(5))], lr=0.1)
        with pytest.raises(ValueError, match="shape"):
            optimizer.load_state_dict(donor.state_dict())
