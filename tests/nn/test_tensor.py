"""Gradient checks and behaviour tests for the autograd Tensor."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, is_grad_enabled

from tests.gradcheck import check_gradient

RNG = np.random.default_rng(0)


def random(*shape):
    return RNG.normal(size=shape)


class TestArithmetic:
    def test_add_gradient(self):
        other = Tensor(random(3, 4))
        check_gradient(lambda x: x + other, random(3, 4))

    def test_add_broadcast_gradient(self):
        other = Tensor(random(4))
        check_gradient(lambda x: x + other, random(3, 4))

    def test_add_broadcast_into_operand(self):
        other = Tensor(random(3, 4))
        check_gradient(lambda x: other + x, random(4))

    def test_sub_gradient(self):
        other = Tensor(random(2, 3))
        check_gradient(lambda x: x - other, random(2, 3))

    def test_rsub_gradient(self):
        check_gradient(lambda x: 2.0 - x, random(2, 3))

    def test_mul_gradient(self):
        other = Tensor(random(3, 4))
        check_gradient(lambda x: x * other, random(3, 4))

    def test_mul_broadcast_gradient(self):
        other = Tensor(random(3, 1))
        check_gradient(lambda x: x * other, random(3, 4))

    def test_div_gradient(self):
        other = Tensor(np.abs(random(3, 4)) + 1.0)
        check_gradient(lambda x: x / other, random(3, 4))

    def test_rdiv_gradient(self):
        check_gradient(lambda x: 1.0 / x, np.abs(random(3, 4)) + 1.0)

    def test_div_gradient_wrt_denominator(self):
        numerator = Tensor(random(3, 4))
        check_gradient(lambda x: numerator / x, np.abs(random(3, 4)) + 1.0)

    def test_pow_gradient(self):
        check_gradient(lambda x: x**3, random(3, 3))

    def test_pow_negative_exponent(self):
        check_gradient(lambda x: x**-0.5, np.abs(random(3, 3)) + 1.0)

    def test_neg_gradient(self):
        check_gradient(lambda x: -x, random(5))

    def test_both_operands_accumulate(self):
        a = Tensor(random(2, 2), requires_grad=True)
        out = (a * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)


class TestNonlinearities:
    def test_exp_gradient(self):
        check_gradient(lambda x: x.exp(), random(3, 3))

    def test_log_gradient(self):
        check_gradient(lambda x: x.log(), np.abs(random(3, 3)) + 0.5)

    def test_tanh_gradient(self):
        check_gradient(lambda x: x.tanh(), random(3, 3))

    def test_relu_gradient(self):
        # Keep values away from the kink at 0.
        x = random(4, 4)
        x[np.abs(x) < 0.1] = 0.5
        check_gradient(lambda t: t.relu(), x)

    def test_gelu_gradient(self):
        check_gradient(lambda x: x.gelu(), random(3, 3))

    def test_sigmoid_gradient(self):
        check_gradient(lambda x: x.sigmoid(), random(3, 3))

    def test_sqrt_gradient(self):
        check_gradient(lambda x: x.sqrt(), np.abs(random(3, 3)) + 0.5)


class TestLinearAlgebra:
    def test_matmul_gradient_left(self):
        other = Tensor(random(4, 5))
        check_gradient(lambda x: x @ other, random(3, 4))

    def test_matmul_gradient_right(self):
        other = Tensor(random(3, 4))
        check_gradient(lambda x: other @ x, random(4, 5))

    def test_batched_matmul_gradient(self):
        other = Tensor(random(2, 4, 5))
        check_gradient(lambda x: x @ other, random(2, 3, 4))

    def test_batched_matmul_broadcast(self):
        other = Tensor(random(4, 5))
        check_gradient(lambda x: x @ other, random(2, 3, 4))


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda x: x.sum(), random(3, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=0), random(3, 4))

    def test_sum_axis_keepdims(self):
        check_gradient(lambda x: x.sum(axis=1, keepdims=True), random(3, 4))

    def test_sum_multiple_axes(self):
        check_gradient(lambda x: x.sum(axis=(0, 2)), random(2, 3, 4))

    def test_mean_gradient(self):
        check_gradient(lambda x: x.mean(axis=-1), random(3, 4))

    def test_mean_all(self):
        check_gradient(lambda x: x.mean(), random(3, 4))

    def test_max_gradient(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)  # no ties
        check_gradient(lambda t: t.max(axis=1), x)

    def test_var_gradient(self):
        check_gradient(lambda x: x.var(axis=-1), random(3, 4))

    def test_var_matches_numpy(self):
        x = random(5, 7)
        np.testing.assert_allclose(Tensor(x).var(axis=-1).data, x.var(axis=-1))


class TestShapes:
    def test_reshape_gradient(self):
        check_gradient(lambda x: x.reshape(2, 6), random(3, 4))

    def test_reshape_infer(self):
        check_gradient(lambda x: x.reshape(-1, 2), random(3, 4))

    def test_transpose_gradient(self):
        check_gradient(lambda x: x.transpose(), random(3, 4))

    def test_transpose_axes_gradient(self):
        check_gradient(lambda x: x.transpose(1, 0, 2), random(2, 3, 4))

    def test_swapaxes_gradient(self):
        check_gradient(lambda x: x.swapaxes(0, 2), random(2, 3, 4))

    def test_getitem_slice_gradient(self):
        check_gradient(lambda x: x[1:, :2], random(3, 4))

    def test_getitem_fancy_gradient(self):
        rows = np.array([0, 2, 2])
        check_gradient(lambda x: x[rows], random(3, 4))

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(random(3, 2), requires_grad=True)
        picked = x[np.array([1, 1, 1])]
        picked.sum().backward()
        np.testing.assert_allclose(x.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(x.grad[0], [0.0, 0.0])

    def test_take_rows_gradient(self):
        idx = np.array([[0, 1], [2, 0]])
        check_gradient(lambda x: x.take_rows(idx), random(3, 4))

    def test_take_rows_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor(random(3)).take_rows(np.array([0]))

    def test_concatenate_gradient(self):
        other = Tensor(random(2, 4))
        check_gradient(lambda x: Tensor.concatenate([x, other], axis=0), random(3, 4))

    def test_concatenate_axis1(self):
        other = Tensor(random(3, 2))
        check_gradient(lambda x: Tensor.concatenate([other, x], axis=1), random(3, 4))

    def test_stack_gradient(self):
        other = Tensor(random(3, 4))
        check_gradient(lambda x: Tensor.stack([x, other], axis=0), random(3, 4))


class TestComposite:
    def test_softmax_gradient(self):
        check_gradient(lambda x: x.softmax(axis=-1), random(3, 5))

    def test_softmax_rows_sum_to_one(self):
        out = Tensor(random(4, 6)).softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_stability_large_values(self):
        out = Tensor(np.array([[1000.0, 1000.0]])).softmax(axis=-1)
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_gradient(self):
        check_gradient(lambda x: x.log_softmax(axis=-1), random(3, 5))

    def test_log_softmax_matches_log_of_softmax(self):
        x = random(3, 5)
        a = Tensor(x).log_softmax(axis=-1).data
        b = np.log(Tensor(x).softmax(axis=-1).data)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_masked_fill_gradient(self):
        mask = np.zeros((3, 4), dtype=bool)
        mask[0, 1] = True
        mask[2, 3] = True
        check_gradient(lambda x: x.masked_fill(mask, -1e9).softmax(axis=-1), random(3, 4))

    def test_masked_fill_blocks_gradient(self):
        mask = np.array([[True, False]])
        x = Tensor(random(1, 2), requires_grad=True)
        x.masked_fill(mask, 0.0).sum().backward()
        assert x.grad[0, 0] == 0.0
        assert x.grad[0, 1] == 1.0


class TestBackwardMechanics:
    def test_backward_requires_scalar_without_seed(self):
        x = Tensor(random(2, 2), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_seed_shape_checked(self):
        x = Tensor(random(2, 2), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_diamond_graph_accumulates_once(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3
        z = y + y  # y used twice
        z.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_deep_chain(self):
        x = Tensor(np.array([0.5]), requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.01
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [1.01**50], rtol=1e-10)

    def test_no_grad_disables_tape(self):
        x = Tensor(random(2, 2), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(random(2, 2), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_gradients_accumulate_across_backwards(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0])


class TestConstruction:
    def test_int_input_converted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "f"

    def test_zeros_and_ones(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0

    def test_item(self):
        assert Tensor(np.array([[3.5]])).item() == 3.5

    def test_len_and_repr(self):
        t = Tensor(random(3, 2), requires_grad=True)
        assert len(t) == 3
        assert "requires_grad" in repr(t)
