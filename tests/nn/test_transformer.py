"""Tests for encoder/decoder stacks, including end-to-end trainability."""

import numpy as np

from repro.nn import (
    Adam,
    Decoder,
    Embedding,
    Encoder,
    FeedForward,
    Linear,
    Tensor,
    cross_entropy,
)

from tests.gradcheck import check_gradient


def rng():
    return np.random.default_rng(13)


class TestFeedForward:
    def test_shape_preserved(self):
        ff = FeedForward(8, 16, rng())
        assert ff(Tensor(rng().normal(size=(2, 3, 8)))).shape == (2, 3, 8)

    def test_gradient(self):
        ff = FeedForward(4, 8, rng())
        check_gradient(lambda x: ff(x), rng().normal(size=(1, 2, 4)), atol=1e-4)


class TestEncoder:
    def test_output_shape(self):
        enc = Encoder(dim=8, num_heads=2, hidden_dim=16, num_layers=3, rng=rng())
        out = enc(Tensor(rng().normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_attention_maps_per_layer(self):
        enc = Encoder(dim=8, num_heads=2, hidden_dim=16, num_layers=3, rng=rng())
        enc(Tensor(rng().normal(size=(1, 4, 8))))
        maps = enc.attention_maps()
        assert len(maps) == 3
        assert all(m.shape == (1, 2, 4, 4) for m in maps)

    def test_gradient(self):
        enc = Encoder(dim=4, num_heads=2, hidden_dim=8, num_layers=1, rng=rng())
        check_gradient(lambda x: enc(x), rng().normal(size=(1, 3, 4)), atol=1e-4)

    def test_mask_respected(self):
        enc = Encoder(dim=8, num_heads=2, hidden_dim=16, num_layers=2, rng=rng())
        mask = np.zeros((1, 1, 4, 4), dtype=bool)
        mask[..., 3] = True
        enc(Tensor(rng().normal(size=(1, 4, 8))), mask=mask)
        for m in enc.attention_maps():
            assert np.all(m[..., 3] < 1e-6)


class TestDecoder:
    def test_output_shape(self):
        dec = Decoder(dim=8, num_heads=2, hidden_dim=16, num_layers=2, rng=rng())
        memory = Tensor(rng().normal(size=(2, 6, 8)))
        out = dec(Tensor(rng().normal(size=(2, 4, 8))), memory)
        assert out.shape == (2, 4, 8)

    def test_causality(self):
        # Changing a later target position must not change earlier outputs.
        dec = Decoder(dim=8, num_heads=2, hidden_dim=16, num_layers=1, rng=rng())
        dec.eval()
        memory = Tensor(rng().normal(size=(1, 3, 8)))
        x = rng().normal(size=(1, 4, 8))
        base = dec(Tensor(x.copy()), memory).data.copy()
        x_perturbed = x.copy()
        x_perturbed[0, 3] += 10.0
        perturbed = dec(Tensor(x_perturbed), memory).data
        np.testing.assert_allclose(perturbed[0, :3], base[0, :3], atol=1e-8)


class TestTrainability:
    def test_encoder_overfits_toy_classification(self):
        """A 2-layer encoder must overfit 8 labelled sequences — the
        smoke test that forward, backward and Adam compose correctly."""
        r = rng()
        vocab, dim, seq = 12, 16, 5
        embed = Embedding(vocab, dim, r)
        enc = Encoder(dim=dim, num_heads=2, hidden_dim=32, num_layers=2, rng=r)
        head = Linear(dim, 2, r)

        ids = r.integers(0, vocab, size=(8, seq))
        labels = (ids.sum(axis=1) % 2).astype(np.int64)

        params = list(embed.parameters()) + list(enc.parameters()) + list(head.parameters())
        optimizer = Adam(params, lr=5e-3)
        losses = []
        for _ in range(60):
            optimizer.zero_grad()
            hidden = enc(embed(ids))
            logits = head(hidden.mean(axis=1))
            loss = cross_entropy(logits, labels)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))

        assert losses[-1] < 0.1, f"did not converge: {losses[::10]}"
        preds = head(enc(embed(ids)).mean(axis=1)).data.argmax(axis=1)
        assert (preds == labels).mean() == 1.0
