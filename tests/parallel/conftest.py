"""Shared fixtures for the data-parallel differential harness.

Everything is seeded and session-scoped: the differential tests compare
checkpoint *bytes* across worker counts, so each run must start from an
identical corpus, tokenizer and model initialization.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.corpus import KnowledgeBase, build_coltype_dataset, \
    generate_wiki_corpus
from repro.models import EncoderConfig
from repro.text import train_tokenizer


def corpus_texts(tables):
    texts = []
    for table in tables:
        texts.append(table.context.text())
        texts.append(" ".join(table.header))
        for _, _, cell in table.iter_cells():
            texts.append(cell.text())
    return texts


@pytest.fixture(scope="session")
def kb():
    return KnowledgeBase(seed=0)


@pytest.fixture(scope="session")
def wiki_tables(kb):
    return generate_wiki_corpus(kb, 16, seed=0)


@pytest.fixture(scope="session")
def tokenizer(wiki_tables):
    return train_tokenizer(corpus_texts(wiki_tables), vocab_size=700)


@pytest.fixture(scope="session")
def config(tokenizer, kb):
    return EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=16, num_heads=2, num_layers=1,
        hidden_dim=32, max_position=128, num_entities=kb.num_entities,
    )


@pytest.fixture(scope="session")
def coltype_examples(wiki_tables):
    return build_coltype_dataset(wiki_tables)[:16]


@pytest.fixture
def make_model(tokenizer, config):
    def build(name: str, seed: int = 0):
        return create_model(name, tokenizer, config=config, seed=seed)
    return build
