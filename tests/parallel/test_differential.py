"""Differential equivalence: parallel runs must equal serial runs, bitwise.

The engine's contract is that worker count is pure scheduling.  These
tests enforce it end-to-end at the strongest level available — the bytes
of saved checkpoint archives — for seeded 8-step pretraining and
fine-tuning runs across model families, plus the serial→parallel→serial
resume round-trip.
"""

import numpy as np
import pytest

from repro.nn.io import write_npz_atomic
from repro.parallel import FixedClock, ParallelConfig
from repro.pretrain import Pretrainer, PretrainConfig
from repro.tasks import FinetuneConfig, finetune
from repro.tasks.coltype import ColumnTypePredictor, build_label_set

MODEL_FAMILIES = ("bert", "tapas", "turl")


def pretrain_config(workers: int, **overrides) -> PretrainConfig:
    settings = dict(steps=8, batch_size=4, seed=0,
                    parallel=ParallelConfig(workers=workers, shard_size=1))
    settings.update(overrides)
    return PretrainConfig(**settings)


class TestPretrainDifferential:
    @pytest.mark.parametrize("name", MODEL_FAMILIES)
    def test_workers4_checkpoint_bytes_equal_serial(
            self, name, make_model, wiki_tables, tmp_path):
        archives = {}
        for workers in (1, 4):
            trainer = Pretrainer(make_model(name),
                                 pretrain_config(workers),
                                 clock=FixedClock())
            trainer.train(wiki_tables)
            path = trainer.save_checkpoint(tmp_path / f"{name}-w{workers}")
            archives[workers] = path.read_bytes()
        assert archives[1] == archives[4], (
            f"{name}: workers=4 checkpoint differs from workers=1")

    @pytest.mark.parametrize("name", MODEL_FAMILIES)
    def test_compiled_checkpoint_bytes_equal_fused_serial(
            self, name, make_model, wiki_tables, tmp_path):
        """The tape-replay executor joins the differential contract.

        Compiled mode replays the fused single-process step, so its
        checkpoint must byte-equal the fused serial run (shard
        decomposition, by contrast, legitimately changes gradient
        summation order — the parallel path pins against its own
        fixtures above).
        """
        archives = {}
        for compile_flag in (False, True):
            trainer = Pretrainer(
                make_model(name),
                pretrain_config(1, parallel=None, compile=compile_flag),
                clock=FixedClock())
            trainer.train(wiki_tables)
            path = trainer.save_checkpoint(
                tmp_path / f"{name}-compile{int(compile_flag)}")
            archives[compile_flag] = path.read_bytes()
        assert archives[True] == archives[False], (
            f"{name}: compiled checkpoint differs from fused serial")

    def test_worker_count_sweep_histories_identical(
            self, make_model, wiki_tables):
        histories = {}
        for workers in (1, 2, 3):
            trainer = Pretrainer(make_model("bert"),
                                 pretrain_config(workers, steps=4),
                                 clock=FixedClock())
            trainer.train(wiki_tables)
            histories[workers] = [r.to_dict() for r in trainer.history]
        assert histories[1] == histories[2] == histories[3]

    def test_serial_parallel_serial_resume_bit_identical(
            self, make_model, wiki_tables, tmp_path):
        # Reference: one uninterrupted workers=1 run (same config modulo
        # workers — checkpoint cadence is part of the saved config dict).
        reference = Pretrainer(make_model("bert"),
                               pretrain_config(1, checkpoint_every=4),
                               clock=FixedClock())
        reference.train(wiki_tables)
        expected = reference.save_checkpoint(
            tmp_path / "reference").read_bytes()

        # Same run split across engines: 4 steps with workers=4, then a
        # fresh workers=1 trainer resumes the snapshot and finishes.
        first = Pretrainer(make_model("bert"),
                           pretrain_config(4, checkpoint_every=4),
                           clock=FixedClock())
        snapshot_dir = tmp_path / "snapshots"
        first.train(wiki_tables, checkpoint_dir=snapshot_dir)
        intermediate = snapshot_dir / "ckpt-00000004.npz"
        assert intermediate.exists()

        resumed = Pretrainer(make_model("bert"),
                             pretrain_config(1, checkpoint_every=4),
                             clock=FixedClock())
        assert resumed.resume(intermediate) == 4
        resumed.train(wiki_tables)
        actual = resumed.save_checkpoint(tmp_path / "resumed").read_bytes()
        assert actual == expected

    def test_parallel_engine_released_after_train(
            self, make_model, wiki_tables):
        trainer = Pretrainer(make_model("bert"), pretrain_config(2, steps=2),
                             clock=FixedClock())
        trainer.train(wiki_tables)
        assert trainer._engine is None

    def test_checkpoint_config_stores_numeric_signature_only(
            self, make_model, wiki_tables, tmp_path):
        trainer = Pretrainer(make_model("bert"),
                             pretrain_config(4, steps=2),
                             clock=FixedClock())
        trainer.train(wiki_tables)
        saved = trainer.capture().config
        assert saved["parallel"] == {"shard_size": 1}
        assert "workers" not in saved["parallel"]


class TestFinetuneDifferential:
    @pytest.mark.parametrize("name", MODEL_FAMILIES)
    def test_workers4_state_bytes_equal_serial(
            self, name, make_model, coltype_examples, tmp_path):
        labels = build_label_set(coltype_examples)
        results = {}
        for workers in (1, 4):
            task = ColumnTypePredictor(make_model(name), labels,
                                       np.random.default_rng(0))
            history = finetune(
                task, coltype_examples,
                FinetuneConfig(epochs=2, batch_size=4, seed=0,
                               parallel=ParallelConfig(workers=workers,
                                                       shard_size=1)),
                clock=FixedClock())
            path = write_npz_atomic(tmp_path / f"{name}-w{workers}.npz",
                                    task.state_dict())
            results[workers] = (path.read_bytes(),
                                [r.to_dict() for r in history])
        assert results[1][1] == results[4][1], (
            f"{name}: parallel fine-tune history diverged from serial")
        assert results[1][0] == results[4][0], (
            f"{name}: parallel fine-tune weights diverged from serial")
