"""Elasticity differentials: worker loss must not move a checkpoint bit.

The supervisor's contract extends PR 5's "worker count is pure
scheduling" to *worker survival*: killing, hanging or retiring workers
mid-run — with respawn or with degradation to fewer workers — yields
final checkpoint bytes identical to an unfaulted run, and a degraded
run's snapshots resume byte-identically.  The staged failures come from
the deterministic fault-injection layer (:mod:`repro.parallel.faults`),
so every scenario here reproduces exactly under a fixed seed.
"""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.module import Parameter
from repro.parallel import (
    DataParallelEngine,
    FaultPlan,
    FaultSpec,
    FixedClock,
    ParallelConfig,
    WorkerFailedError,
    parse_fault_plan,
)
from repro.pretrain import Pretrainer, PretrainConfig
from repro.runtime import HealthMonitor, InMemorySink, MetricsRegistry, \
    using_registry

#: Supervisor settings tuned for tests: fast detection, fast respawn.
_FAST = dict(heartbeat_interval=0.1, heartbeat_timeout=5.0,
             step_deadline=2.0, respawn_backoff=0.01)


def elastic_config(workers: int, faults: FaultPlan | None = None,
                   **overrides) -> PretrainConfig:
    parallel = dict(workers=workers, shard_size=1, faults=faults, **_FAST)
    parallel.update(overrides.pop("parallel", {}))
    settings = dict(steps=8, batch_size=4, seed=0,
                    parallel=ParallelConfig(**parallel))
    settings.update(overrides)
    return PretrainConfig(**settings)


# ----------------------------------------------------------------------
# Fault-plan unit behavior
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", step=0, worker=0)
        with pytest.raises(ValueError):
            FaultSpec("die", step=-1, worker=0)
        with pytest.raises(ValueError, match="same"):
            FaultPlan((FaultSpec("die", 1, 0), FaultSpec("hang", 1, 0)))

    def test_match_is_generation_aware(self):
        plan = FaultPlan((FaultSpec("die", step=3, worker=1),))
        assert plan.match(3, 1, 0) is not None
        assert plan.match(3, 1, 1) is None, (
            "a staged death must not re-fire on the respawned replacement")
        assert plan.match(3, 0, 0) is None
        assert plan.match(2, 1, 0) is None

    def test_seeded_plans_are_reproducible(self):
        one = FaultPlan.seeded(7, steps=10, workers=4, n_faults=3)
        two = FaultPlan.seeded(7, steps=10, workers=4, n_faults=3)
        assert one == two
        assert len(one.specs) == 3
        assert FaultPlan.seeded(8, steps=10, workers=4, n_faults=3) != one

    def test_parse_compact_syntax(self):
        plan = parse_fault_plan("die@5:1, hang@3:0, delay@2:2:0.25")
        kinds = {(s.kind, s.step, s.worker) for s in plan.specs}
        assert kinds == {("die", 5, 1), ("hang", 3, 0), ("delay", 2, 2)}
        [delay] = [s for s in plan.specs if s.kind == "delay"]
        assert delay.seconds == 0.25
        with pytest.raises(ValueError, match="bad fault clause"):
            parse_fault_plan("die@x:1")
        with pytest.raises(ValueError, match="empty"):
            parse_fault_plan("  ,  ")

    def test_fault_injection_requires_workers(self):
        with pytest.raises(ValueError, match="workers > 1"):
            ParallelConfig(workers=1,
                           faults=FaultPlan((FaultSpec("die", 0, 0),)))


# ----------------------------------------------------------------------
# Engine-level recovery (toy closure, fast)
# ----------------------------------------------------------------------
def toy_engine(workers: int, **parallel_overrides):
    params = [Parameter(np.arange(6, dtype=np.float64).reshape(2, 3)),
              Parameter(np.ones(3))]

    def compute(payload):
        rows, weight = payload
        loss = ((Tensor(rows) @ params[0]) * params[1] * weight).sum()
        loss.backward()
        return {"loss": float(loss.data)}

    settings = dict(workers=workers, **_FAST)
    settings.update(parallel_overrides)
    return DataParallelEngine(params, compute, ParallelConfig(**settings))


def toy_payloads(count: int = 4):
    rng = np.random.default_rng(0)
    return [(rng.standard_normal((2, 2)), 1.0 / count)
            for _ in range(count)]


class TestEngineRecovery:
    def setup_method(self):
        payloads = toy_payloads()
        with toy_engine(1) as serial:
            self.expected = serial.step(payloads)
        self.payloads = payloads

    def assert_bits_equal(self, outcome):
        assert self.expected.grads.keys() == outcome.grads.keys()
        for index in self.expected.grads:
            assert np.array_equal(self.expected.grads[index],
                                  outcome.grads[index])
        assert ([s["loss"] for s in outcome.stats]
                == [s["loss"] for s in self.expected.stats])

    def test_killed_worker_is_respawned_bit_identically(self):
        registry = MetricsRegistry()
        plan = FaultPlan((FaultSpec("die", step=0, worker=1),))
        with using_registry(registry):
            with toy_engine(4, faults=plan) as engine:
                self.assert_bits_equal(engine.step(self.payloads))
                # The replacement serves subsequent steps normally.
                self.assert_bits_equal(engine.step(self.payloads))
                assert len(engine._pool.live_slots()) == 4
        assert registry.counter("parallel.worker_deaths").value == 1
        assert registry.counter("parallel.respawns").value == 1

    def test_hung_worker_reaped_within_deadline(self):
        plan = FaultPlan((FaultSpec("hang", step=0, worker=0, seconds=60),))
        registry = MetricsRegistry()
        with using_registry(registry):
            with toy_engine(3, faults=plan, step_deadline=1.0) as engine:
                self.assert_bits_equal(engine.step(self.payloads))
        assert registry.counter("parallel.worker_deaths").value == 1

    def test_delayed_worker_is_slow_not_failed(self):
        plan = FaultPlan((FaultSpec("delay", step=0, worker=1,
                                    seconds=0.3),))
        registry = MetricsRegistry()
        with using_registry(registry):
            with toy_engine(4, faults=plan, step_deadline=30.0) as engine:
                self.assert_bits_equal(engine.step(self.payloads))
        assert registry.counter("parallel.worker_deaths").value == 0

    def test_respawn_exhaustion_degrades_pool(self):
        plan = FaultPlan((FaultSpec("die", step=0, worker=2),))
        registry = MetricsRegistry()
        with using_registry(registry):
            with toy_engine(4, faults=plan, max_respawns=0) as engine:
                self.assert_bits_equal(engine.step(self.payloads))
                assert len(engine._pool.live_slots()) == 3
                self.assert_bits_equal(engine.step(self.payloads))
        assert registry.counter("parallel.degraded").value == 1
        assert registry.counter("parallel.respawns").value == 0

    def test_total_degradation_falls_back_in_process(self):
        # Every original worker dies at step 0; no respawns allowed.
        plan = FaultPlan(tuple(FaultSpec("die", step=0, worker=w)
                               for w in range(2)))
        with toy_engine(2, faults=plan, max_respawns=0) as engine:
            self.assert_bits_equal(engine.step(self.payloads))
            assert engine._pool.live_slots() == []
            self.assert_bits_equal(engine.step(self.payloads))

    def test_non_elastic_surfaces_typed_error(self):
        plan = FaultPlan((FaultSpec("die", step=0, worker=1),))
        with toy_engine(4, faults=plan, elastic=False) as engine:
            with pytest.raises(WorkerFailedError) as info:
                engine.step(self.payloads)
        assert info.value.worker == 1
        assert info.value.step == 0
        assert "worker 1" in str(info.value)

    def test_worker_events_reach_health_monitor(self):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        plan = FaultPlan((FaultSpec("die", step=0, worker=0),))
        monitor = HealthMonitor(source="pretrain")
        with using_registry(registry):
            engine = toy_engine(2, faults=plan)
            engine.health = monitor
            with engine:
                engine.step(self.payloads)
        assert monitor.worker_events >= 1
        assert registry.counter(
            "pretrain.health.worker_events").value >= 1
        events = [e for e in sink.events if e.get("kind") == "health"]
        assert any(e.get("status") == "worker_death" for e in events)


# ----------------------------------------------------------------------
# End-to-end differentials (the acceptance bar)
# ----------------------------------------------------------------------
class TestElasticDifferential:
    def test_kill_and_replace_checkpoint_bytes_identical(
            self, make_model, wiki_tables, tmp_path):
        """Acceptance: --workers 4 with worker 1 killed at step 5 equals
        an unfaulted --workers 4 run, byte for byte."""
        archives = {}
        for label, faults in (
                ("clean", None),
                ("faulted", FaultPlan((FaultSpec("die", step=5,
                                                 worker=1),)))):
            trainer = Pretrainer(make_model("bert"),
                                 elastic_config(4, faults=faults),
                                 clock=FixedClock())
            trainer.train(wiki_tables)
            path = trainer.save_checkpoint(tmp_path / label)
            archives[label] = path.read_bytes()
        assert archives["clean"] == archives["faulted"], (
            "kill-and-replace moved checkpoint bytes")

    def test_degraded_run_resumes_bit_identical(
            self, make_model, wiki_tables, tmp_path):
        """Acceptance: a run that degraded to 3 workers writes snapshots
        any healthy trainer resumes byte-identically."""
        reference = Pretrainer(make_model("bert"),
                               elastic_config(4, checkpoint_every=4),
                               clock=FixedClock())
        reference.train(wiki_tables)
        expected = reference.save_checkpoint(
            tmp_path / "reference").read_bytes()

        # Worker 2 dies at step 1 with respawns disabled: the pool
        # degrades to 3 workers and finishes the first half.
        plan = FaultPlan((FaultSpec("die", step=1, worker=2),))
        degraded = Pretrainer(
            make_model("bert"),
            elastic_config(4, faults=plan, checkpoint_every=4,
                           parallel=dict(max_respawns=0)),
            clock=FixedClock())
        snapshots = tmp_path / "snapshots"
        degraded.train(wiki_tables, checkpoint_dir=snapshots)
        final = degraded.save_checkpoint(tmp_path / "degraded").read_bytes()
        assert final == expected, "degraded run moved checkpoint bytes"

        # A fresh healthy trainer resumes the degraded run's mid-run
        # snapshot and lands on the same bytes.
        resumed = Pretrainer(make_model("bert"),
                             elastic_config(4, checkpoint_every=4),
                             clock=FixedClock())
        assert resumed.resume(snapshots / "ckpt-00000004.npz") == 4
        resumed.train(wiki_tables)
        actual = resumed.save_checkpoint(tmp_path / "resumed").read_bytes()
        assert actual == expected, "degraded snapshot did not resume clean"

    def test_hung_worker_run_completes_unattended(
            self, make_model, wiki_tables, tmp_path):
        """Acceptance: a hung worker is detected within the configured
        deadline and the run completes without manual intervention."""
        registry = MetricsRegistry()
        plan = FaultPlan((FaultSpec("hang", step=2, worker=0,
                                    seconds=120),))
        clean = Pretrainer(make_model("bert"), elastic_config(4),
                           clock=FixedClock())
        clean.train(wiki_tables)
        expected = clean.save_checkpoint(tmp_path / "clean").read_bytes()

        with using_registry(registry):
            trainer = Pretrainer(make_model("bert"),
                                 elastic_config(4, faults=plan),
                                 clock=FixedClock())
            trainer.train(wiki_tables)
        actual = trainer.save_checkpoint(tmp_path / "hung").read_bytes()
        assert actual == expected
        assert registry.counter("parallel.worker_deaths").value == 1
        assert registry.counter("parallel.respawns").value == 1
