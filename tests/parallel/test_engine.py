"""Unit tests for the engine layers: plan, reduce, workers, scheduling."""

import numpy as np
import pytest

from repro.models import EncoderConfig
from repro.nn import Tensor
from repro.nn.module import Parameter
from repro.parallel import (
    DataParallelEngine,
    ParallelConfig,
    WorkerError,
    WorkerPool,
    assign_round_robin,
    plan_shards,
    shard_slices,
    split_waves,
    tree_combine,
    tree_reduce_grads,
)
from repro.runtime import MetricsRegistry, using_registry


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(shard_size=-1)
        with pytest.raises(ValueError):
            ParallelConfig(accumulate=0)

    def test_auto_shard_size_ignores_workers(self):
        for workers in (1, 2, 3, 4, 7):
            assert ParallelConfig(workers=workers).resolve_shard_size(8) == 2
        assert ParallelConfig().resolve_shard_size(3) == 1
        assert ParallelConfig(shard_size=16).resolve_shard_size(4) == 4

    def test_numeric_signature_excludes_workers(self):
        one = ParallelConfig(workers=1, shard_size=2)
        four = ParallelConfig(workers=4, shard_size=2)
        assert one.numeric_signature(8) == four.numeric_signature(8)
        assert "workers" not in one.numeric_signature(8)


class TestPlan:
    def test_slices_cover_batch_in_order(self):
        slices = shard_slices(10, 3)
        covered = []
        for piece in slices:
            covered.extend(range(piece.start, piece.stop))
        assert covered == list(range(10))

    def test_waves_partition_contiguously(self):
        waves = split_waves(5, 2)
        assert waves == ((0, 1, 2), (3, 4))
        assert split_waves(3, 10) == ((0,), (1,), (2,))

    def test_plan_shards(self):
        plan = plan_shards(batch_size=7, shard_size=2, accumulate=2)
        assert plan.num_shards == 4
        assert plan.waves == ((0, 1), (2, 3))

    def test_round_robin_skips_idle_workers(self):
        assignment = assign_round_robin([0, 1, 2], workers=4)
        assert assignment == {0: [0], 1: [1], 2: [2]}


class TestReduce:
    def test_tree_combine_identity_semantics(self):
        value = np.ones(3)
        assert tree_combine([]) is None
        assert tree_combine([None, None]) is None
        assert tree_combine([None, value, None]) is value

    def test_permutation_invariance_is_bitwise(self):
        rng = np.random.default_rng(7)
        grads = [(i, {0: rng.standard_normal(5)
                      * 10.0 ** float(rng.integers(-3, 3))})
                 for i in range(6)]
        expected = tree_reduce_grads(grads, 6)
        shuffled = list(grads)
        rng.shuffle(shuffled)
        actual = tree_reduce_grads(shuffled, 6)
        assert np.array_equal(expected[0], actual[0])

    def test_missing_and_duplicate_shards_raise(self):
        with pytest.raises(ValueError, match="missing"):
            tree_reduce_grads([(0, {0: np.ones(2)})], 2)
        with pytest.raises(ValueError, match="duplicate"):
            tree_reduce_grads([(0, {0: np.ones(2)}), (0, {0: np.ones(2)})], 1)
        with pytest.raises(ValueError, match="out of range"):
            tree_reduce_grads([(5, {0: np.ones(2)})], 2)

    def test_union_keeps_untouched_params_absent(self):
        combined = tree_reduce_grads(
            [(0, {0: np.ones(2)}), (1, {1: np.ones(3)})], 2)
        assert set(combined) == {0, 1}


def build_toy_engine(workers: int, accumulate: int = 1):
    params = [Parameter(np.arange(6, dtype=np.float64).reshape(2, 3)),
              Parameter(np.ones(3))]

    def compute(payload):
        x, weight = payload
        loss = ((Tensor(x) @ params[0]) * params[1] * weight).sum()
        loss.backward()
        return {"loss": float(loss.data)}

    engine = DataParallelEngine(
        params, compute, ParallelConfig(workers=workers,
                                        accumulate=accumulate))
    return engine, params


def toy_payloads(count: int = 4):
    rng = np.random.default_rng(0)
    return [(rng.standard_normal((2, 2)), 1.0 / count)
            for _ in range(count)]


class TestEngine:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_worker_count_is_pure_scheduling(self, workers):
        payloads = toy_payloads()
        with build_toy_engine(1)[0] as serial:
            expected = serial.step(payloads)
        with build_toy_engine(workers)[0] as engine:
            actual = engine.step(payloads)
        for index in expected.grads:
            assert np.array_equal(expected.grads[index],
                                  actual.grads[index])
        assert [s["loss"] for s in actual.stats] == \
            [s["loss"] for s in expected.stats]

    def test_accumulate_waves_do_not_change_bits(self):
        payloads = toy_payloads(5)
        with build_toy_engine(2)[0] as flat:
            expected = flat.step(payloads)
        with build_toy_engine(2, accumulate=3)[0] as waved:
            actual = waved.step(payloads)
        for index in expected.grads:
            assert np.array_equal(expected.grads[index],
                                  actual.grads[index])

    def test_load_grads_preserves_none_semantics(self):
        engine, params = build_toy_engine(1)
        engine.load_grads({0: np.ones((2, 3))})
        assert params[0].grad is not None
        assert params[1].grad is None

    def test_metrics_observed(self):
        registry = MetricsRegistry()
        with using_registry(registry):
            with build_toy_engine(1)[0] as engine:
                engine.step(toy_payloads())
        assert registry.histogram("parallel.shard_ms").count == 4
        assert registry.histogram("parallel.reduce_ms").count == 1
        assert registry.histogram("parallel.imbalance").count == 1
        assert registry.histogram("parallel.imbalance").min_value >= 0.0

    def test_empty_step_raises(self):
        with build_toy_engine(1)[0] as engine:
            with pytest.raises(ValueError):
                engine.step([])

    def test_worker_exception_propagates_with_traceback(self):
        params = [Parameter(np.ones(2))]

        def explode(payload):
            raise RuntimeError("shard went boom")

        with DataParallelEngine(params, explode,
                                ParallelConfig(workers=2)) as engine:
            with pytest.raises(WorkerError, match="shard went boom"):
                engine.step([(None,), (None,)])

    def test_close_is_idempotent(self):
        engine, _ = build_toy_engine(2)
        engine.step(toy_payloads())
        engine.close()
        engine.close()
        # a fresh pool is forked lazily if stepped again
        engine.step(toy_payloads())
        engine.close()


class TestWorkerPool:
    def test_rejects_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0, lambda payload: ({}, {}), lambda arrays: None)

    def test_parameter_sync_reaches_children(self):
        params = [Parameter(np.zeros(3))]

        def compute(payload):
            # Children must see the freshly synced parameter bytes.
            return {}, {"seen": params[0].data.copy()}

        def sync(arrays):
            params[0].data[...] = arrays[0]

        pool = WorkerPool(1, compute, sync)
        try:
            pool.send(0, 0, [np.full(3, 7.0)], [(0, None)])
            [(index, grads, stats, _)] = pool.collect([0])
            assert index == 0
            assert np.array_equal(stats["seen"], np.full(3, 7.0))
        finally:
            pool.close()

    def test_workers_persist_across_steps(self):
        def compute(payload):
            import os
            return {}, {"pid": os.getpid()}

        pool = WorkerPool(1, compute, lambda arrays: None)
        try:
            pids = set()
            for step in range(3):
                pool.send(0, step, None, [(0, None)])
                [(_, _, stats, _)] = pool.collect([0])
                pids.add(stats["pid"])
            assert len(pids) == 1, "worker re-forked between steps"
        finally:
            pool.close()

    def test_close_escalates_to_sigkill_and_leaves_no_zombies(self):
        def stubborn(payload):
            # Ignore SIGTERM, then wedge: only SIGKILL can end this.
            import signal
            import time as _time
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            _time.sleep(600)
            return {}, {}

        pool = WorkerPool(2, stubborn, lambda arrays: None,
                          stop_grace=0.2, term_grace=0.2)
        pool.start()
        processes = [pool.handle(slot).process for slot in pool.live_slots()]
        pool.send(0, 0, None, [(0, None)])
        pool.send(1, 0, None, [(1, None)])
        import time as _time
        _time.sleep(0.3)  # let both workers enter the stubborn compute
        pool.close()
        for process in processes:
            assert not process.is_alive()
            assert process.exitcode is not None, "zombie child after close"
        assert pool.live_slots() == []

    def test_reap_then_respawn_increments_generation(self):
        pool = WorkerPool(1, lambda payload: ({}, {}), lambda arrays: None)
        try:
            pool.start()
            assert pool.handle(0).generation == 0
            pool.reap(0)
            assert pool.live_slots() == []
            handle = pool.respawn(0)
            assert handle.generation == 1
            pool.send(0, 0, None, [(0, None)])
            assert pool.collect([0])[0][0] == 0
        finally:
            pool.close()


class TestPretrainerGuards:
    def test_dropout_rejected_under_parallelism(self, tokenizer, kb):
        from repro.core import create_model
        from repro.pretrain import Pretrainer, PretrainConfig

        config = EncoderConfig(
            vocab_size=len(tokenizer.vocab), dim=16, num_heads=2,
            num_layers=1, hidden_dim=32, max_position=128,
            num_entities=kb.num_entities, dropout=0.1)
        model = create_model("bert", tokenizer, config=config, seed=0)
        with pytest.raises(ValueError, match="dropout"):
            Pretrainer(model, PretrainConfig(
                parallel=ParallelConfig(workers=2)))
