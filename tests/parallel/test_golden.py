"""Golden-regression fixtures: seeded 10-step loss/grad-norm histories.

One fixture per model family pins the training numerics of the serial
(fused) path, and one extra fixture pins the data-parallel engine path.
Any PR that perturbs a forward, a gradient, masking RNG consumption or
the optimizer shows up here as a readable step-by-step diff.

Regenerate intentionally with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/parallel/test_golden.py

(tapex is absent: its encoder-decoder head has no token-embedding tie,
so the MLM Pretrainer does not support it yet.)
"""

import json
import math
import os
from pathlib import Path

import pytest

from repro.core import create_model
from repro.parallel import FixedClock, ParallelConfig
from repro.pretrain import Pretrainer, PretrainConfig

GOLDEN_DIR = Path(__file__).parent / "golden"
FAMILIES = ("bert", "tapas", "tabert", "turl", "mate", "tabbie", "tuta")
STEPS = 10
RTOL = 1e-6
ATOL = 1e-9


def run_history(name, tokenizer, config, wiki_tables,
                parallel: ParallelConfig | None = None,
                compile: bool = False) -> list[dict]:
    model = create_model(name, tokenizer, config=config, seed=0)
    trainer = Pretrainer(
        model,
        PretrainConfig(steps=STEPS, batch_size=4, seed=0, parallel=parallel,
                       compile=compile),
        clock=FixedClock())
    trainer.train(wiki_tables)
    return [{"step": r.step, "loss": r.loss, "grad_norm": r.grad_norm}
            for r in trainer.history]


def golden_path(tag: str) -> Path:
    return GOLDEN_DIR / f"{tag}.json"


def check_against_golden(tag: str, actual: list[dict]) -> None:
    path = golden_path(tag)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(
            {"tag": tag, "steps": STEPS, "records": actual}, indent=2) + "\n")
        return
    if not path.exists():
        pytest.fail(f"golden fixture missing: {path} "
                    f"(run with REPRO_REGEN_GOLDEN=1 to create it)")
    expected = json.loads(path.read_text())["records"]
    assert len(expected) == len(actual)

    def mismatched(a: float, b: float) -> bool:
        return not math.isclose(a, b, rel_tol=RTOL, abs_tol=ATOL)

    rows = []
    for want, got in zip(expected, actual):
        for field in ("loss", "grad_norm"):
            if mismatched(want[field], got[field]):
                rows.append(
                    f"  step {want['step']:>2} {field:>9}: "
                    f"expected {want[field]!r}, got {got[field]!r} "
                    f"(rel err {abs(want[field] - got[field]) / max(abs(want[field]), 1e-30):.2e})")
    if rows:
        pytest.fail(
            f"training numerics for {tag!r} drifted from the golden "
            f"fixture ({len(rows)} value(s); tolerance rtol={RTOL}, "
            f"atol={ATOL}).\nIf the change is intentional, regenerate "
            f"with REPRO_REGEN_GOLDEN=1.\n" + "\n".join(rows))


@pytest.mark.parametrize("name", FAMILIES)
def test_serial_history_matches_golden(name, tokenizer, config, wiki_tables):
    actual = run_history(name, tokenizer, config, wiki_tables)
    check_against_golden(name, actual)


@pytest.mark.parametrize("name", FAMILIES)
def test_compiled_history_matches_golden(name, tokenizer, config,
                                         wiki_tables):
    """Tape-replay execution must reproduce the eager fixtures exactly.

    The compiled path pins itself against the *same* golden files as the
    serial path — no separate fixtures — because replay is bit-identical
    by contract, not merely close.
    """
    actual = run_history(name, tokenizer, config, wiki_tables, compile=True)
    check_against_golden(name, actual)


def test_parallel_engine_history_matches_golden(tokenizer, config,
                                                wiki_tables):
    actual = run_history("bert", tokenizer, config, wiki_tables,
                         parallel=ParallelConfig(workers=1, shard_size=1))
    check_against_golden("bert-parallel-shard1", actual)


def test_golden_diff_is_readable(tokenizer, config, wiki_tables):
    """A perturbed history must fail with a step-addressed message."""
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regenerating fixtures")
    expected = json.loads(golden_path("bert").read_text())["records"]
    perturbed = [dict(r) for r in expected]
    perturbed[3]["loss"] *= 1.0 + 1e-4
    with pytest.raises(pytest.fail.Exception) as failure:
        check_against_golden("bert", perturbed)
    message = str(failure.value)
    assert "step  3" in message
    assert "REPRO_REGEN_GOLDEN" in message
