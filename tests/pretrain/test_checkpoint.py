"""Fault-tolerance tests: checkpoint/resume, crash recovery, health guard."""

import numpy as np
import pytest

import repro.pretrain.trainer as trainer_module
from repro.nn import CheckpointError
from repro.pretrain import Pretrainer, PretrainConfig, TrainerCheckpoint
from repro.runtime import (
    HealthConfig,
    InMemorySink,
    MetricsRegistry,
    TrainingDivergedError,
    using_registry,
)


def _strip_wall_time(record):
    payload = record.to_dict()
    payload.pop("wall_time")
    return payload


def _assert_same_weights(a, b):
    state_a, state_b = a.state_dict(), b.state_dict()
    assert set(state_a) == set(state_b)
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name])


class TestResumeDeterminism:
    def test_resume_is_bit_identical(self, config, tokenizer, wiki_tables,
                                     tmp_path):
        from repro.models import TableBert

        pretrain = PretrainConfig(steps=10, batch_size=4, seed=3,
                                  checkpoint_every=5)
        straight = Pretrainer(TableBert(config, tokenizer,
                                        np.random.default_rng(0)), pretrain)
        straight_history = straight.train(wiki_tables)

        interrupted = Pretrainer(TableBert(config, tokenizer,
                                           np.random.default_rng(0)), pretrain)
        interrupted.train(wiki_tables, checkpoint_dir=tmp_path)
        mid = tmp_path / "ckpt-00000005.npz"
        assert mid.exists()

        resumed = Pretrainer(TableBert(config, tokenizer,
                                       np.random.default_rng(0)), pretrain)
        assert resumed.resume(mid) == 5
        resumed_history = resumed.train(wiki_tables)

        assert len(resumed_history) == len(straight_history) == 10
        for lhs, rhs in zip(straight_history, resumed_history):
            assert _strip_wall_time(lhs) == _strip_wall_time(rhs)
        _assert_same_weights(straight.model, resumed.model)
        straight_opt = straight.optimizer.state_dict()
        resumed_opt = resumed.optimizer.state_dict()
        assert straight_opt["step_count"] == resumed_opt["step_count"]
        for slot in ("_m", "_v"):
            for lhs, rhs in zip(straight_opt[slot], resumed_opt[slot]):
                np.testing.assert_array_equal(lhs, rhs)

    def test_in_memory_roundtrip(self, bert, wiki_tables):
        trainer = Pretrainer(bert, PretrainConfig(steps=4, batch_size=2))
        trainer.train(wiki_tables)
        checkpoint = trainer.capture()
        assert checkpoint.step == 4
        assert trainer.restore(checkpoint) == 4

    def test_disk_roundtrip_preserves_rng(self, bert, wiki_tables, tmp_path):
        trainer = Pretrainer(bert, PretrainConfig(steps=3, batch_size=2))
        trainer.train(wiki_tables)
        path = trainer.save_checkpoint(tmp_path / "ckpt")
        loaded = TrainerCheckpoint.load(path)
        assert loaded.rng_state == trainer.rng.bit_generator.state
        assert loaded.step == 3
        assert loaded.schedule_lr == trainer.schedule.lr

    def test_resume_rejects_mismatched_config(self, config, tokenizer,
                                              wiki_tables, tmp_path):
        from repro.models import TableBert

        trainer = Pretrainer(TableBert(config, tokenizer,
                                       np.random.default_rng(0)),
                             PretrainConfig(steps=3, batch_size=2, seed=1))
        trainer.train(wiki_tables)
        path = trainer.save_checkpoint(tmp_path / "ckpt")

        other = Pretrainer(TableBert(config, tokenizer,
                                     np.random.default_rng(0)),
                           PretrainConfig(steps=3, batch_size=2, seed=2))
        with pytest.raises(CheckpointError, match="seed"):
            other.resume(path)


class TestTrainReentry:
    def test_second_train_call_raises(self, bert, wiki_tables):
        trainer = Pretrainer(bert, PretrainConfig(steps=2, batch_size=2))
        trainer.train(wiki_tables)
        with pytest.raises(RuntimeError, match="already completed"):
            trainer.train(wiki_tables)

    def test_resume_then_train_continues(self, bert, wiki_tables, tmp_path):
        trainer = Pretrainer(bert, PretrainConfig(steps=4, batch_size=2,
                                                  checkpoint_every=2))
        trainer.train(wiki_tables, checkpoint_dir=tmp_path)
        resumed = Pretrainer(bert, PretrainConfig(steps=4, batch_size=2,
                                                  checkpoint_every=2))
        assert resumed.resume(tmp_path / "ckpt-00000002.npz") == 2
        assert len(resumed.train(wiki_tables)) == 4


class TestSnapshotsAndRecovery:
    def test_retention_keeps_last_k(self, bert, wiki_tables, tmp_path):
        trainer = Pretrainer(bert, PretrainConfig(
            steps=8, batch_size=2, checkpoint_every=2, keep_checkpoints=2))
        trainer.train(wiki_tables, checkpoint_dir=tmp_path)
        snapshots = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert snapshots == ["ckpt-00000006.npz", "ckpt-00000008.npz"]
        # Pruned snapshots take their manifests with them.
        manifests = sorted(p.name for p in tmp_path.glob("*.manifest.json"))
        assert manifests == ["ckpt-00000006.npz.manifest.json",
                             "ckpt-00000008.npz.manifest.json"]

    def test_resume_dir_falls_back_past_truncated_newest(self, bert,
                                                         wiki_tables,
                                                         tmp_path):
        trainer = Pretrainer(bert, PretrainConfig(
            steps=6, batch_size=2, checkpoint_every=3))
        trainer.train(wiki_tables, checkpoint_dir=tmp_path)
        newest = tmp_path / "ckpt-00000006.npz"
        # Crash mid-write: newest archive is truncated.
        newest.write_bytes(newest.read_bytes()[:64])

        resumed = Pretrainer(bert, PretrainConfig(
            steps=6, batch_size=2, checkpoint_every=3))
        assert resumed.resume(tmp_path) == 3

    def test_resume_explicit_corrupt_file_falls_back(self, bert, wiki_tables,
                                                     tmp_path):
        trainer = Pretrainer(bert, PretrainConfig(
            steps=6, batch_size=2, checkpoint_every=3))
        trainer.train(wiki_tables, checkpoint_dir=tmp_path)
        newest = tmp_path / "ckpt-00000006.npz"
        newest.write_bytes(b"not a zip archive")

        resumed = Pretrainer(bert, PretrainConfig(
            steps=6, batch_size=2, checkpoint_every=3))
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resumed.resume(newest) == 3

    def test_resume_empty_dir_raises(self, bert, tmp_path):
        trainer = Pretrainer(bert, PretrainConfig(steps=2))
        with pytest.raises(CheckpointError, match="no valid"):
            trainer.resume(tmp_path)

    def test_no_tmp_files_left_behind(self, bert, wiki_tables, tmp_path):
        trainer = Pretrainer(bert, PretrainConfig(
            steps=4, batch_size=2, checkpoint_every=2))
        trainer.train(wiki_tables, checkpoint_dir=tmp_path)
        assert not list(tmp_path.glob("*.tmp"))


class TestHealthGuard:
    @pytest.fixture
    def nan_injector(self, monkeypatch):
        """Make ``mlm_loss`` return NaN on selected call indices."""
        original = trainer_module.mlm_loss
        state = {"call": 0, "bad_calls": set()}

        def wrapped(logits, masked):
            state["call"] += 1
            loss = original(logits, masked)
            if state["call"] in state["bad_calls"]:
                loss.data = np.array(float("nan"))
            return loss

        monkeypatch.setattr(trainer_module, "mlm_loss", wrapped)
        return state

    def test_nan_step_skipped_and_emitted(self, bert, wiki_tables,
                                          nan_injector):
        nan_injector["bad_calls"] = {3}
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        trainer = Pretrainer(bert, PretrainConfig(steps=6, batch_size=2))
        adam_steps = {"n": 0}
        real_step = trainer.optimizer.step

        def counting_step():
            adam_steps["n"] += 1
            real_step()

        trainer.optimizer.step = counting_step
        with using_registry(registry):
            history = trainer.train(wiki_tables)

        skipped = [r for r in history if r.extras.get("skipped")]
        assert len(skipped) == 1 and np.isnan(skipped[0].loss)
        assert adam_steps["n"] == 5  # the NaN never reached Adam.step
        events = sink.of_kind("health")
        assert len(events) == 1
        assert events[0]["reason"] == "non_finite_loss"
        assert events[0]["status"] == "bad_step"

    def test_rollback_after_streak_recovers(self, bert, wiki_tables,
                                            nan_injector):
        # Three consecutive NaN steps trigger a rollback to the last good
        # checkpoint with a halved base LR; the replayed (clean) steps
        # then complete the run.
        nan_injector["bad_calls"] = {4, 5, 6}
        config = PretrainConfig(
            steps=6, batch_size=2, checkpoint_every=2,
            health=HealthConfig(max_consecutive_bad=3, lr_backoff=0.5))
        trainer = Pretrainer(bert, config)
        base_lr = trainer.schedule.lr
        history = trainer.train(wiki_tables)
        assert len(history) == 6
        assert not any(r.extras.get("skipped") for r in history)
        assert trainer.health.rollbacks == 1
        assert trainer.schedule.lr == pytest.approx(base_lr * 0.5)

    def test_unrecoverable_divergence_raises(self, bert, wiki_tables,
                                             monkeypatch):
        def always_nan(logits, masked):
            from repro.nn import Tensor
            return Tensor(np.array(float("nan")), requires_grad=True)

        monkeypatch.setattr(trainer_module, "mlm_loss", always_nan)
        config = PretrainConfig(
            steps=6, batch_size=2,
            health=HealthConfig(max_consecutive_bad=2, max_rollbacks=1))
        trainer = Pretrainer(bert, config)
        with pytest.raises(TrainingDivergedError):
            trainer.train(wiki_tables)
