"""Real-crash recovery: SIGKILL a live pretrain run mid-checkpoint-write.

The truncation tests in ``test_checkpoint.py`` simulate a crash by
editing bytes on disk.  These tests stage the real thing: a child
process runs an actual pretraining loop and SIGKILLs *itself* in the
middle of the atomic snapshot write (or in the window between the
archive rename and its manifest), then the parent — a separate process,
exactly like an operator restarting a dead run — resumes from the
snapshot directory and completes the run.  That exercises the whole
crash contract of :mod:`repro.nn.io` end-to-end: no half-written
archive ever carries the final name, leftover ``.tmp`` debris is
ignored, and resume falls back to the newest snapshot that verifies.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.nn.io import latest_valid_checkpoint
from repro.pretrain import Pretrainer, PretrainConfig

pytestmark = pytest.mark.skipif(sys.platform == "win32",
                                reason="SIGKILL semantics are POSIX")

#: The child runs the same deterministic 6-step run the parent fixtures
#: describe (seed-0 corpus/tokenizer/model, cadence-3 snapshots) and
#: kills itself at a staged point of a staged ``np.savez`` call.
#: argv: snapshot_dir, kill_on_call, mode(mid_write|post_replace)
_DRIVER = """
import os, signal, sys
import numpy as np

import repro.nn.io as io_module
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig, TableBert
from repro.pretrain import Pretrainer, PretrainConfig
from repro.text import train_tokenizer

snapshot_dir, kill_on_call, mode = sys.argv[1], int(sys.argv[2]), sys.argv[3]

kb = KnowledgeBase(seed=0)
tables = generate_wiki_corpus(kb, 16, seed=0)
texts = []
for table in tables:
    texts.append(table.context.text())
    texts.append(" ".join(table.header))
    for _, _, cell in table.iter_cells():
        texts.append(cell.text())
tokenizer = train_tokenizer(texts, vocab_size=700)
config = EncoderConfig(
    vocab_size=len(tokenizer.vocab), dim=16, num_heads=2, num_layers=1,
    hidden_dim=32, max_position=128, num_entities=kb.num_entities)
model = TableBert(config, tokenizer, np.random.default_rng(0))

calls = {"savez": 0, "replace": 0}
real_savez = np.savez

def killing_savez(handle, **arrays):
    calls["savez"] += 1
    if mode == "mid_write" and calls["savez"] == kill_on_call:
        handle.write(b"PK\\x03\\x04 torn half-written archive")
        handle.flush()
        os.kill(os.getpid(), signal.SIGKILL)
    real_savez(handle, **arrays)

real_replace = os.replace

def killing_replace(src, dst):
    real_replace(src, dst)
    if str(dst).endswith(".npz"):
        calls["replace"] += 1
        if mode == "post_replace" and calls["replace"] == kill_on_call:
            os.kill(os.getpid(), signal.SIGKILL)

io_module.np.savez = killing_savez
io_module.os.replace = killing_replace

trainer = Pretrainer(model, PretrainConfig(steps=6, batch_size=2, seed=0,
                                           checkpoint_every=3))
trainer.train(tables, checkpoint_dir=snapshot_dir)
raise SystemExit(3)  # the staged kill never fired
"""


def _run_and_kill(snapshot_dir: Path, kill_on_call: int,
                  mode: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (repo_src + os.pathsep + existing
                         if existing else repo_src)
    return subprocess.run(
        [sys.executable, "-c", _DRIVER, str(snapshot_dir),
         str(kill_on_call), mode],
        env=env, capture_output=True, text=True, timeout=300)


def _resume_and_finish(bert, wiki_tables, snapshot_dir: Path,
                       expected_step: int) -> None:
    trainer = Pretrainer(bert, PretrainConfig(steps=6, batch_size=2, seed=0,
                                              checkpoint_every=3))
    assert trainer.resume(snapshot_dir) == expected_step
    history = trainer.train(wiki_tables)
    assert len(history) == 6


class TestSigkillDuringAtomicWrite:
    def test_kill_mid_archive_write_falls_back_to_previous(
            self, bert, wiki_tables, tmp_path):
        # savez call 1 writes the step-3 snapshot; call 2 (step 6) is
        # killed mid-write, leaving a torn .tmp and no new final name.
        result = _run_and_kill(tmp_path, kill_on_call=2, mode="mid_write")
        assert result.returncode == -signal.SIGKILL, result.stderr

        survivors = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert survivors == ["ckpt-00000003.npz"], (
            "a half-written archive must never carry the final name")
        assert list(tmp_path.glob("*.tmp")), (
            "expected the torn .tmp the kill left behind")
        newest = latest_valid_checkpoint(tmp_path, pattern="ckpt-*.npz")
        assert newest is not None and newest.name == "ckpt-00000003.npz"

        _resume_and_finish(bert, wiki_tables, tmp_path, expected_step=3)

    def test_kill_between_rename_and_manifest_resumes_newest(
            self, bert, wiki_tables, tmp_path):
        # The archive rename landed but the process died before its
        # manifest: the archive itself is intact, so the zip-structure
        # check accepts it and resume continues from step 6 (nothing to
        # replay), not from the older snapshot.
        result = _run_and_kill(tmp_path, kill_on_call=2, mode="post_replace")
        assert result.returncode == -signal.SIGKILL, result.stderr

        newest = tmp_path / "ckpt-00000006.npz"
        assert newest.exists()
        assert not newest.with_name(
            newest.name + ".manifest.json").exists()
        picked = latest_valid_checkpoint(tmp_path, pattern="ckpt-*.npz")
        assert picked is not None and picked.name == "ckpt-00000006.npz"

        trainer = Pretrainer(bert, PretrainConfig(
            steps=6, batch_size=2, seed=0, checkpoint_every=3))
        assert trainer.resume(tmp_path) == 6
