"""Tests for MLM and MER masking procedures."""

import numpy as np
import pytest

from repro.pretrain import (
    IGNORE_INDEX,
    combine_masking,
    mask_for_mer,
    mask_for_mlm,
)


def make_batch(model, tables):
    return model.batch(tables)


class TestMlmMasking:
    def test_targets_hold_original_tokens(self, bert, wiki_tables):
        batch, serialized = make_batch(bert, wiki_tables[:4])
        rng = np.random.default_rng(0)
        masked = mask_for_mlm(batch, serialized, bert.tokenizer.vocab, rng,
                              mask_probability=0.5)
        positions = masked.mlm_targets != IGNORE_INDEX
        assert positions.any()
        np.testing.assert_array_equal(
            masked.mlm_targets[positions], batch.token_ids[positions])

    def test_original_batch_untouched(self, bert, wiki_tables):
        batch, serialized = make_batch(bert, wiki_tables[:4])
        before = batch.token_ids.copy()
        rng = np.random.default_rng(1)
        mask_for_mlm(batch, serialized, bert.tokenizer.vocab, rng,
                     mask_probability=0.9)
        np.testing.assert_array_equal(batch.token_ids, before)

    def test_whole_cell_masks_complete_spans(self, bert, wiki_tables):
        batch, serialized = make_batch(bert, wiki_tables[:4])
        rng = np.random.default_rng(2)
        masked = mask_for_mlm(batch, serialized, bert.tokenizer.vocab, rng,
                              mask_probability=0.5, whole_cell=True)
        # Every cell span is either fully targeted or fully untouched.
        for i, table in enumerate(serialized):
            for start, end in table.cell_spans.values():
                flags = masked.mlm_targets[i, start:end] != IGNORE_INDEX
                assert flags.all() or not flags.any()

    def test_token_level_masking_partial_cells_possible(self, bert, wiki_tables):
        batch, serialized = make_batch(bert, wiki_tables[:8])
        rng = np.random.default_rng(3)
        masked = mask_for_mlm(batch, serialized, bert.tokenizer.vocab, rng,
                              mask_probability=0.5, whole_cell=False)
        assert masked.num_mlm_targets > 0

    def test_majority_masked_positions_are_mask_token(self, bert, wiki_tables):
        batch, serialized = make_batch(bert, wiki_tables[:8])
        rng = np.random.default_rng(4)
        masked = mask_for_mlm(batch, serialized, bert.tokenizer.vocab, rng,
                              mask_probability=0.9)
        positions = masked.mlm_targets != IGNORE_INDEX
        mask_id = bert.tokenizer.vocab.mask_id
        fraction = (masked.batch.token_ids[positions] == mask_id).mean()
        assert 0.6 < fraction <= 1.0

    def test_probability_validated(self, bert, wiki_tables):
        batch, serialized = make_batch(bert, wiki_tables[:2])
        with pytest.raises(ValueError):
            mask_for_mlm(batch, serialized, bert.tokenizer.vocab,
                         np.random.default_rng(0), mask_probability=0.0)

    def test_no_mer_targets_from_mlm(self, bert, wiki_tables):
        batch, serialized = make_batch(bert, wiki_tables[:4])
        masked = mask_for_mlm(batch, serialized, bert.tokenizer.vocab,
                              np.random.default_rng(0), mask_probability=0.5)
        assert masked.num_mer_targets == 0


class TestMerMasking:
    def test_targets_are_entity_slots(self, turl, wiki_tables):
        batch, serialized = make_batch(turl, wiki_tables[:4])
        rng = np.random.default_rng(0)
        masked = mask_for_mer(batch, serialized, turl.tokenizer.vocab, rng,
                              mask_probability=0.9)
        positions = masked.mer_targets != IGNORE_INDEX
        assert positions.any()
        np.testing.assert_array_equal(
            masked.mer_targets[positions], batch.entity_ids[positions])
        assert (masked.mer_targets[positions] > 0).all()

    def test_entity_channel_hidden(self, turl, wiki_tables):
        batch, serialized = make_batch(turl, wiki_tables[:4])
        rng = np.random.default_rng(1)
        masked = mask_for_mer(batch, serialized, turl.tokenizer.vocab, rng,
                              mask_probability=0.9)
        positions = masked.mer_targets != IGNORE_INDEX
        assert (masked.batch.entity_ids[positions] == 0).all()
        assert (masked.batch.token_ids[positions] ==
                turl.tokenizer.vocab.mask_id).all()

    def test_non_entity_cells_never_masked(self, turl, wiki_tables):
        batch, serialized = make_batch(turl, wiki_tables[:4])
        rng = np.random.default_rng(2)
        masked = mask_for_mer(batch, serialized, turl.tokenizer.vocab, rng,
                              mask_probability=1.0)
        positions = masked.mer_targets != IGNORE_INDEX
        assert (batch.entity_ids[positions] > 0).all()


class TestCombinedMasking:
    def test_mer_wins_overlap(self, turl, wiki_tables):
        batch, serialized = make_batch(turl, wiki_tables[:4])
        rng = np.random.default_rng(0)
        mlm = mask_for_mlm(batch, serialized, turl.tokenizer.vocab, rng,
                           mask_probability=0.9)
        mer = mask_for_mer(batch, serialized, turl.tokenizer.vocab, rng,
                           mask_probability=0.9)
        combined = combine_masking(mlm, mer)
        overlap = (combined.mer_targets != IGNORE_INDEX)
        assert (combined.mlm_targets[overlap] == IGNORE_INDEX).all()

    def test_both_objectives_present(self, turl, wiki_tables):
        batch, serialized = make_batch(turl, wiki_tables[:8])
        rng = np.random.default_rng(1)
        mlm = mask_for_mlm(batch, serialized, turl.tokenizer.vocab, rng,
                           mask_probability=0.4)
        mer = mask_for_mer(batch, serialized, turl.tokenizer.vocab, rng,
                           mask_probability=0.4)
        combined = combine_masking(mlm, mer)
        assert combined.num_mlm_targets > 0
        assert combined.num_mer_targets > 0
