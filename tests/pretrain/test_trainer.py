"""Tests for the pretraining loop."""

import numpy as np
import pytest

from repro.pretrain import PretrainConfig, Pretrainer, masked_accuracy, IGNORE_INDEX
from repro.nn import Tensor


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PretrainConfig(steps=0)
        with pytest.raises(ValueError):
            PretrainConfig(use_mlm=False, use_mer=False)


class TestMaskedAccuracy:
    def test_perfect_prediction(self):
        logits = np.zeros((1, 2, 3))
        logits[0, 0, 2] = 5.0
        logits[0, 1, 1] = 5.0
        targets = np.array([[2, 1]])
        assert masked_accuracy(Tensor(logits), targets) == 1.0

    def test_ignored_positions_excluded(self):
        logits = np.zeros((1, 2, 3))
        logits[0, 0, 2] = 5.0
        targets = np.array([[2, IGNORE_INDEX]])
        assert masked_accuracy(logits, targets) == 1.0

    def test_all_ignored_is_zero(self):
        logits = np.zeros((1, 2, 3))
        targets = np.full((1, 2), IGNORE_INDEX)
        assert masked_accuracy(logits, targets) == 0.0


class TestPretrainerMlm:
    def test_loss_decreases(self, bert, wiki_tables):
        config = PretrainConfig(steps=30, batch_size=4, learning_rate=3e-3,
                                mask_probability=0.3, seed=0)
        trainer = Pretrainer(bert, config)
        history = trainer.train(wiki_tables)
        early = np.mean([r.loss for r in history[:5]])
        late = np.mean([r.loss for r in history[-5:]])
        assert late < early

    def test_history_complete(self, bert, wiki_tables):
        config = PretrainConfig(steps=5, batch_size=2)
        trainer = Pretrainer(bert, config)
        history = trainer.train(wiki_tables)
        assert len(history) == 5
        assert [r.step for r in history] == list(range(5))
        assert all(r.learning_rate > 0 for r in history)

    def test_empty_corpus_rejected(self, bert):
        with pytest.raises(ValueError):
            Pretrainer(bert, PretrainConfig(steps=1)).train([])

    def test_model_left_in_eval_mode(self, bert, wiki_tables):
        Pretrainer(bert, PretrainConfig(steps=2, batch_size=2)).train(wiki_tables)
        assert not bert.training

    def test_external_mlm_head_parameters_trained(self, bert, wiki_tables):
        trainer = Pretrainer(bert, PretrainConfig(steps=3, batch_size=2))
        before = trainer.mlm_head.transform.weight.data.copy()
        trainer.train(wiki_tables)
        assert not np.allclose(before, trainer.mlm_head.transform.weight.data)


class TestPretrainerTurl:
    def test_both_objectives_logged(self, turl, wiki_tables):
        config = PretrainConfig(steps=8, batch_size=4, mask_probability=0.3,
                                mer_mask_probability=0.5, seed=1)
        trainer = Pretrainer(turl, config)
        history = trainer.train(wiki_tables)
        assert any(r.mlm_loss > 0 for r in history)
        assert any(r.mer_loss > 0 for r in history)

    def test_mer_learning_progresses(self, turl, wiki_tables):
        config = PretrainConfig(steps=80, batch_size=8, learning_rate=5e-3,
                                use_mlm=False, mer_mask_probability=0.5, seed=2)
        trainer = Pretrainer(turl, config)
        history = trainer.train(wiki_tables)
        early_loss = np.mean([r.mer_loss for r in history[:10]])
        late_loss = np.mean([r.mer_loss for r in history[-10:]])
        assert late_loss < early_loss
        early_acc = np.mean([r.mer_accuracy for r in history[:10]])
        late_acc = np.mean([r.mer_accuracy for r in history[-10:]])
        assert late_acc > early_acc

    def test_mer_only_mode(self, turl, wiki_tables):
        config = PretrainConfig(steps=3, batch_size=2, use_mlm=False)
        history = Pretrainer(turl, config).train(wiki_tables)
        assert all(r.mlm_loss == 0 for r in history)
