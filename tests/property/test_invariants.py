"""Property-based tests on cross-module invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import LayerNorm, Tensor
from repro.sql import Aggregate, SelectQuery, execute, generate_query, parse_query
from repro.serialize import RowMajorSerializer, TokenRole, encode_features, pad_batch
from repro.tables import Table, loads_table, dumps_table
from repro.text import train_tokenizer

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_WORDS = ["alpha", "beta", "gamma", "delta", "paris", "rome", "x1", "y2"]


@st.composite
def arrays(draw, max_side=5):
    rows = draw(st.integers(1, max_side))
    cols = draw(st.integers(1, max_side))
    data = draw(st.lists(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=cols,
                 max_size=cols),
        min_size=rows, max_size=rows))
    return np.array(data)


@st.composite
def tables(draw, max_rows=5, max_cols=4):
    cols = draw(st.integers(1, max_cols))
    rows = draw(st.integers(1, max_rows))
    header = [f"col{i}" for i in range(cols)]
    grid = []
    for _ in range(rows):
        row = []
        for _ in range(cols):
            kind = draw(st.integers(0, 2))
            if kind == 0:
                row.append(draw(st.sampled_from(_WORDS)))
            elif kind == 1:
                row.append(float(draw(st.integers(0, 1000))))
            else:
                row.append(None)
        grid.append(row)
    return Table(header, grid, table_id="prop")


@pytest.fixture(scope="module")
def tokenizer():
    return train_tokenizer([" ".join(_WORDS) + " col0 col1 col2 col3 | ;"] * 4,
                           vocab_size=400)


# ----------------------------------------------------------------------
# nn invariants
# ----------------------------------------------------------------------
class TestNnInvariants:
    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariant(self, x):
        a = Tensor(x).softmax(axis=-1).data
        b = Tensor(x + 17.0).softmax(axis=-1).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_distribution(self, x):
        probs = Tensor(x).softmax(axis=-1).data
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)

    @given(arrays(), st.floats(0.5, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_layernorm_scale_invariant(self, x, scale):
        # With unit gain/zero bias, LayerNorm(ax + b·1) == LayerNorm(x)
        # whenever row variance dominates eps (hypothesis found the
        # near-constant-row counterexample where eps breaks the identity).
        from hypothesis import assume
        norm = LayerNorm(x.shape[-1], eps=1e-12)
        varied = x + np.arange(x.shape[-1])
        assume(np.all(varied.std(axis=-1) > 0.5))
        a = norm(Tensor(varied)).data
        b = norm(Tensor(varied * scale + 3.0)).data
        np.testing.assert_allclose(a, b, atol=1e-5)

    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_numpy(self, x):
        np.testing.assert_allclose(Tensor(x).sum(axis=0).data, x.sum(axis=0))

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_gradient_of_sum_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))


# ----------------------------------------------------------------------
# Serialization invariants
# ----------------------------------------------------------------------
class TestSerializationInvariants:
    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_cell_spans_disjoint_and_in_range(self, tokenizer, table):
        out = RowMajorSerializer(tokenizer, max_tokens=256).serialize(table)
        seen = set()
        for (start, end) in out.cell_spans.values():
            assert 0 <= start <= end <= len(out)
            for position in range(start, end):
                assert position not in seen
                seen.add(position)

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_roles_match_spans(self, tokenizer, table):
        out = RowMajorSerializer(tokenizer, max_tokens=256).serialize(table)
        for (start, end) in out.cell_spans.values():
            assert all(out.roles[p] == TokenRole.CELL
                       for p in range(start, end))

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_features_align_with_serialization(self, tokenizer, table):
        out = RowMajorSerializer(tokenizer, max_tokens=256).serialize(table)
        features = encode_features(out, table=table)
        assert len(features) == len(out)
        batch = pad_batch([features], pad_id=0)
        assert batch.lengths[0] == len(out)

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_csv_roundtrip_preserves_shape(self, table):
        again = loads_table(dumps_table(table))
        assert again.shape == table.shape


# ----------------------------------------------------------------------
# SQL executor invariants
# ----------------------------------------------------------------------
class TestSqlInvariants:
    @given(tables(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_count_bounded_by_rows(self, table, seed):
        query = SelectQuery(table.header[0], Aggregate.COUNT)
        (count,) = execute(query, table)
        assert 0 <= count <= table.num_rows

    @given(tables(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_aggregates_row_order_invariant(self, table, seed):
        rng = np.random.default_rng(seed)
        query = generate_query(table, rng)
        if query.aggregate is Aggregate.NONE:
            query = SelectQuery(query.select_column, Aggregate.COUNT,
                                query.conditions)
        permutation = list(rng.permutation(table.num_rows))
        permuted = table.with_rows_permuted(permutation)
        assert execute(query, table) == execute(query, permuted)

    @given(tables(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_conditions_never_grow_results(self, table, seed):
        rng = np.random.default_rng(seed)
        query = generate_query(table, rng, allow_clauses=False)
        unconditioned = SelectQuery(query.select_column, query.aggregate)
        if query.aggregate in (Aggregate.NONE, Aggregate.COUNT):
            full = execute(unconditioned, table)
            filtered = execute(query, table)
            if query.aggregate is Aggregate.COUNT:
                assert filtered[0] <= full[0]
            else:
                assert len(filtered) <= len(full)

    @given(tables(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_render_parse_identity(self, table, seed):
        rng = np.random.default_rng(seed)
        query = generate_query(table, rng)
        assert parse_query(query.render()) == query
