"""Property-based tests for the deterministic all-reduce (hypothesis).

The invariants the data-parallel engine stakes its correctness on:

1. the fixed-order tree reduce is *bitwise* invariant to the order shard
   gradients arrive in (completion order must not matter);
2. running the same shard payloads under workers ∈ {1,2,3,4} produces
   *bitwise* identical combined gradients (worker count is scheduling);
3. gradient accumulation — k micro-shards with ``n_shard/n_total`` loss
   scaling, tree-summed — reproduces the one-fused-shard gradient up to
   float addition reordering (``allclose``; bitwise is impossible here
   because the fused BLAS reduction uses a different summation tree).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.functional import cross_entropy
from repro.nn.module import Parameter
from repro.parallel import (
    DataParallelEngine,
    ParallelConfig,
    shard_slices,
    tree_combine,
    tree_reduce_grads,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def shard_gradient_sets(draw, max_shards=7, max_params=4):
    """A list of (shard_index, {param_index: array}) with sparse presence."""
    num_shards = draw(st.integers(2, max_shards))
    num_params = draw(st.integers(1, max_params))
    shapes = [tuple(draw(st.lists(st.integers(1, 3), min_size=1, max_size=2)))
              for _ in range(num_params)]
    shards = []
    for shard_index in range(num_shards):
        grads = {}
        for param_index in range(num_params):
            if draw(st.booleans()):
                size = int(np.prod(shapes[param_index]))
                values = draw(st.lists(finite, min_size=size, max_size=size))
                grads[param_index] = np.array(
                    values, dtype=np.float64).reshape(shapes[param_index])
        shards.append((shard_index, grads))
    return num_shards, shards


@settings(max_examples=60, deadline=None)
@given(shard_gradient_sets(), st.randoms(use_true_random=False))
def test_tree_reduce_bitwise_invariant_to_permutation(gradient_set, shuffler):
    num_shards, shards = gradient_set
    expected = tree_reduce_grads(shards, num_shards)
    permuted = list(shards)
    shuffler.shuffle(permuted)
    actual = tree_reduce_grads(permuted, num_shards)
    assert expected.keys() == actual.keys()
    for param_index in expected:
        assert np.array_equal(expected[param_index], actual[param_index],
                              equal_nan=False)


@settings(max_examples=40, deadline=None)
@given(st.lists(finite, min_size=1, max_size=9),
       st.lists(st.booleans(), min_size=1, max_size=9))
def test_tree_combine_matches_fixed_left_fold_shape(values, presence):
    """tree_combine over scalars equals the same tree built by hand."""
    arrays = [np.array([v]) if keep else None
              for v, keep in zip(values, presence)]
    expected = arrays
    while len(expected) > 1:
        folded = []
        for i in range(0, len(expected) - 1, 2):
            left, right = expected[i], expected[i + 1]
            if left is None:
                folded.append(right)
            elif right is None:
                folded.append(left)
            else:
                folded.append(left + right)
        if len(expected) % 2:
            folded.append(expected[-1])
        expected = folded
    result = tree_combine(arrays)
    if expected[0] is None:
        assert result is None
    else:
        assert np.array_equal(result, expected[0])


# ----------------------------------------------------------------------
# Engine-level: worker count is pure scheduling
# ----------------------------------------------------------------------
def _engine_grads(payloads, workers: int, seed_data: np.ndarray):
    params = [Parameter(seed_data.copy()),
              Parameter(np.linspace(-1.0, 1.0, seed_data.shape[1]))]

    def compute(payload):
        rows, weight = payload
        loss = ((Tensor(rows) @ params[0]) * params[1] * weight).sum()
        loss.backward()
        return {"loss": float(loss.data)}

    with DataParallelEngine(params, compute,
                            ParallelConfig(workers=workers)) as engine:
        return engine.step(payloads).grads


@settings(max_examples=5, deadline=None)
@given(st.integers(2, 6), st.integers(0, 2 ** 16))
def test_worker_counts_one_through_four_bit_identical(num_shards, seed):
    rng = np.random.default_rng(seed)
    seed_data = rng.standard_normal((3, 4))
    payloads = [(rng.standard_normal((2, 3)), 1.0 / num_shards)
                for _ in range(num_shards)]
    baseline = _engine_grads(payloads, 1, seed_data)
    for workers in (2, 3, 4):
        grads = _engine_grads(payloads, workers, seed_data)
        assert baseline.keys() == grads.keys()
        for param_index in baseline:
            assert np.array_equal(baseline[param_index], grads[param_index])


# ----------------------------------------------------------------------
# Gradient accumulation ≈ fused shard
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(2, 12), st.integers(1, 5), st.integers(0, 2 ** 16))
def test_accumulated_micro_shards_equal_one_fused_shard(
        batch, shard_size, seed):
    """k weighted micro-shard gradients tree-sum to the fused gradient.

    The fused loss is a mean over batch targets; each micro-shard scales
    its own mean loss by n_shard/n_batch, so the unweighted tree sum
    reconstructs the fused objective up to fp addition order.
    """
    rng = np.random.default_rng(seed)
    classes = 5
    features = rng.standard_normal((batch, classes))
    targets = rng.integers(0, classes, size=batch)

    def grad_of(rows: slice, weight: float) -> np.ndarray:
        w = Parameter(np.eye(classes))
        logits = Tensor(features[rows]) @ w
        loss = cross_entropy(logits, targets[rows]) * weight
        loss.backward()
        return w.grad.copy()

    fused = grad_of(slice(0, batch), 1.0)
    shard_grads = []
    for index, rows in enumerate(shard_slices(batch, shard_size)):
        count = rows.stop - rows.start
        shard_grads.append((index, {0: grad_of(rows, count / batch)}))
    combined = tree_reduce_grads(shard_grads, len(shard_grads))[0]
    np.testing.assert_allclose(combined, fused, rtol=1e-9, atol=1e-12)
