"""Shared tiny-model fixtures for runtime telemetry tests."""

import numpy as np
import pytest

from repro.core import build_tokenizer_for_tables
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig, TableBert


@pytest.fixture(scope="module")
def wiki_tables():
    return generate_wiki_corpus(KnowledgeBase(seed=0), 16, seed=0)


@pytest.fixture(scope="module")
def tokenizer(wiki_tables):
    return build_tokenizer_for_tables(wiki_tables, vocab_size=600)


@pytest.fixture(scope="module")
def config(tokenizer):
    return EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16, num_heads=2,
                         num_layers=1, hidden_dim=32, max_position=128)


@pytest.fixture
def bert(config, tokenizer):
    return TableBert(config, tokenizer, np.random.default_rng(0))
