"""Tests for the numerical-health monitor."""

import math

import pytest

from repro.runtime import (
    HealthConfig,
    HealthMonitor,
    InMemorySink,
    MetricsRegistry,
    using_registry,
)


class TestHealthConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(max_consecutive_bad=0)
        with pytest.raises(ValueError):
            HealthConfig(lr_backoff=0.0)
        with pytest.raises(ValueError):
            HealthConfig(lr_backoff=1.5)
        with pytest.raises(ValueError):
            HealthConfig(divergence_factor=1.0)
        with pytest.raises(ValueError):
            HealthConfig(max_rollbacks=-1)


class TestClassification:
    def test_finite_step_is_ok(self):
        verdict = HealthMonitor().check(0, 2.5, 1.0)
        assert verdict.ok and not verdict.rollback

    def test_nan_loss_flagged(self):
        verdict = HealthMonitor().check(0, float("nan"), 1.0)
        assert not verdict.ok
        assert verdict.reason == "non_finite_loss"

    def test_inf_loss_flagged(self):
        assert not HealthMonitor().check(0, math.inf, 1.0).ok

    def test_nan_grad_flagged(self):
        verdict = HealthMonitor().check(0, 2.0, float("nan"))
        assert verdict.reason == "non_finite_grad_norm"

    def test_exploding_grad_flagged(self):
        monitor = HealthMonitor(HealthConfig(grad_norm_limit=100.0))
        assert monitor.check(0, 2.0, 1e9).reason == "grad_norm_limit"

    def test_loss_spike_needs_history(self):
        monitor = HealthMonitor(HealthConfig(divergence_factor=10.0,
                                             min_history=4))
        # Too little history: a large early loss passes (and seeds the
        # window, so later spike detection is relative to it).
        assert monitor.check(0, 50.0, 1.0).ok
        monitor.reset_window()
        for step in range(1, 5):
            assert monitor.check(step, 2.0, 1.0).ok
        verdict = monitor.check(5, 2.0 * 100, 1.0)
        assert verdict.reason == "loss_spike"

    def test_disabled_monitor_approves_everything(self):
        monitor = HealthMonitor(HealthConfig(enabled=False))
        assert monitor.check(0, float("nan"), float("inf")).ok
        assert monitor.bad_steps == 0


class TestStreaks:
    def test_rollback_after_streak(self):
        monitor = HealthMonitor(HealthConfig(max_consecutive_bad=3))
        assert not monitor.check(0, float("nan")).rollback
        assert not monitor.check(1, float("nan")).rollback
        assert monitor.check(2, float("nan")).rollback
        assert monitor.rollbacks == 1
        # The streak counter resets after a rollback request.
        assert not monitor.check(3, float("nan")).rollback

    def test_good_step_resets_streak(self):
        monitor = HealthMonitor(HealthConfig(max_consecutive_bad=2))
        monitor.check(0, float("nan"))
        monitor.check(1, 2.0)
        assert not monitor.check(2, float("nan")).rollback

    def test_rollback_exhausted(self):
        monitor = HealthMonitor(HealthConfig(max_consecutive_bad=1,
                                             max_rollbacks=2))
        assert not monitor.rollback_exhausted()
        monitor.check(0, float("nan"))
        monitor.check(1, float("nan"))
        assert not monitor.rollback_exhausted()
        monitor.check(2, float("nan"))
        assert monitor.rollback_exhausted()


class TestEvents:
    def test_bad_step_emits_health_event(self):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        with using_registry(registry):
            monitor = HealthMonitor(source="pretrain")
            monitor.check(0, 2.0, 1.0)        # good: no event
            monitor.check(1, float("nan"), 1.0)
        events = [e for e in sink.events if e["kind"] == "health"]
        assert len(events) == 1
        event = events[0]
        assert event["source"] == "pretrain"
        assert event["status"] == "bad_step"
        assert event["reason"] == "non_finite_loss"
        assert event["step"] == 1
        assert registry.counter("pretrain.health.bad_steps").value == 1

    def test_rollback_event_status(self):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        with using_registry(registry):
            monitor = HealthMonitor(HealthConfig(max_consecutive_bad=1))
            monitor.check(0, float("inf"))
        assert sink.events[-1]["status"] == "rollback"
        assert registry.counter("train.health.rollbacks").value == 1
