"""Tests for the autograd-tape profiler."""

import time

import numpy as np
import pytest

from repro.nn import Encoder, Tensor, get_tape_hook
from repro.runtime import InMemorySink, MetricsRegistry, profile


def small_workload():
    a = Tensor(np.ones((4, 8)), requires_grad=True)
    b = Tensor(np.ones((8, 4)), requires_grad=True)
    out = (a @ b).relu().sum()
    out.backward()
    return a, b


class TestProfileCollection:
    def test_counts_and_bytes(self):
        with profile(emit=False) as prof:
            small_workload()
        assert prof.stats["matmul"].calls == 1
        assert prof.stats["relu"].calls == 1
        assert prof.stats["sum"].calls == 1
        # (4, 4) float64 output arrays
        assert prof.stats["matmul"].bytes == 4 * 4 * 8
        assert prof.total_calls >= 3

    def test_forward_and_backward_timed(self):
        with profile(emit=False) as prof:
            small_workload()
        matmul = prof.stats["matmul"]
        assert matmul.forward_seconds > 0
        assert matmul.backward_calls == 1
        assert matmul.backward_seconds > 0

    def test_nothing_recorded_outside_region(self):
        with profile(emit=False) as prof:
            pass
        small_workload()
        assert prof.stats == {}

    def test_table_lists_every_op(self):
        with profile(emit=False) as prof:
            small_workload()
        table = prof.table()
        for op in ("matmul", "relu", "sum", "TOTAL"):
            assert op in table

    def test_events_emitted_to_registry(self):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        with profile(registry=registry):
            small_workload()
        ops = {event["op"] for event in sink.of_kind("profile_op")}
        assert {"matmul", "relu", "sum"} <= ops

    def test_encoder_forward_profiles_attention(self):
        rng = np.random.default_rng(0)
        encoder = Encoder(dim=8, num_heads=2, hidden_dim=16, num_layers=1,
                          rng=rng)
        x = Tensor(rng.normal(size=(2, 6, 8)))
        with profile(emit=False) as prof:
            encoder(x)
        assert prof.stats["softmax"].calls >= 1
        assert prof.stats["matmul"].calls >= 4  # qkv projections + scores


class TestProfileHygiene:
    def test_hook_and_methods_restored(self):
        original_add = Tensor.__dict__["__add__"]
        with profile(emit=False):
            assert Tensor.__dict__["__add__"] is not original_add
            assert get_tape_hook() is not None
        assert Tensor.__dict__["__add__"] is original_add
        assert get_tape_hook() is None

    def test_restored_after_exception(self):
        original_add = Tensor.__dict__["__add__"]
        with pytest.raises(RuntimeError):
            with profile(emit=False):
                raise RuntimeError("boom")
        assert Tensor.__dict__["__add__"] is original_add
        assert get_tape_hook() is None

    def test_nested_profile_rejected(self):
        with profile(emit=False):
            with pytest.raises(RuntimeError):
                with profile(emit=False):
                    pass
        assert get_tape_hook() is None


class TestDisabledOverhead:
    def test_disabled_path_not_slower_than_profiled(self):
        """The no-op fast path must stay within 5% of the profiled path.

        By construction the disabled path does strictly less work per op
        than the profiled one, so this bound only fails if the hook check
        leaks cost into the common case.
        """
        rng = np.random.default_rng(0)
        encoder = Encoder(dim=16, num_heads=2, hidden_dim=32, num_layers=1,
                          rng=rng)
        x = Tensor(rng.normal(size=(2, 16, 16)))

        def forward():
            encoder(x)

        forward()  # warm up
        assert get_tape_hook() is None
        disabled_samples, profiled_samples = [], []
        for _ in range(9):  # interleave A/B so clock drift cancels
            start = time.perf_counter()
            forward()
            disabled_samples.append(time.perf_counter() - start)
            with profile(emit=False):
                start = time.perf_counter()
                forward()
                profiled_samples.append(time.perf_counter() - start)
        disabled = float(np.median(disabled_samples))
        profiled = float(np.median(profiled_samples))
        # Strictly-less-work bound, with margin only for scheduler noise.
        assert disabled <= profiled * 1.25
