"""Tests for the unified TrainRecord."""

import pytest

from repro.runtime import TrainRecord


class TestTrainRecord:
    def test_defaults(self):
        record = TrainRecord(step=3, loss=1.5)
        assert record.step == 3
        assert record.loss == 1.5
        assert record.lr == 0.0
        assert record.grad_norm == 0.0
        assert record.wall_time == 0.0
        assert record.tokens == 0
        assert record.extras == {}

    def test_learning_rate_alias(self):
        record = TrainRecord(step=0, loss=1.0, lr=3e-3)
        assert record.learning_rate == 3e-3

    def test_extras_readable_as_attributes(self):
        record = TrainRecord(step=0, loss=1.0,
                             extras={"mlm_loss": 0.7, "epoch": 2})
        assert record.mlm_loss == 0.7
        assert record.epoch == 2

    def test_unknown_attribute_raises(self):
        record = TrainRecord(step=0, loss=1.0)
        with pytest.raises(AttributeError):
            record.not_a_field

    def test_tokens_per_second(self):
        assert TrainRecord(step=0, loss=0.0, wall_time=2.0,
                           tokens=500).tokens_per_second == 250.0
        assert TrainRecord(step=0, loss=0.0).tokens_per_second == 0.0

    def test_to_dict_inlines_extras(self):
        record = TrainRecord(step=1, loss=2.0, lr=0.01, grad_norm=0.5,
                             wall_time=0.1, tokens=64,
                             extras={"mer_loss": 1.0})
        payload = record.to_dict()
        assert payload["step"] == 1
        assert payload["mer_loss"] == 1.0
        assert "extras" not in payload

    def test_dict_round_trip(self):
        record = TrainRecord(step=4, loss=2.0, lr=0.01, grad_norm=0.5,
                             wall_time=0.25, tokens=128,
                             extras={"mlm_accuracy": 0.4})
        rebuilt = TrainRecord.from_dict(record.to_dict())
        assert rebuilt == record

    def test_equality(self):
        assert TrainRecord(step=0, loss=1.0) == TrainRecord(step=0, loss=1.0)
        assert TrainRecord(step=0, loss=1.0) != TrainRecord(step=0, loss=2.0)


class TestPackageExports:
    def test_step_record_alias_removed(self):
        import repro.pretrain

        assert not hasattr(repro.pretrain, "StepRecord")
        with pytest.raises(ImportError):
            from repro.pretrain import StepRecord  # noqa: F401

    def test_top_level_reexports(self):
        import repro

        assert repro.TrainRecord is TrainRecord
        from repro.tasks import Prediction
        assert repro.Prediction is Prediction
