"""Tests for the metrics registry, instruments, and sinks."""

import json
import time

import pytest

from repro.parallel import FixedClock
from repro.runtime import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    StdoutTableSink,
    TrainRecord,
    emit_train_record,
    get_registry,
    set_telemetry,
    telemetry_enabled,
    using_registry,
)


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc()
        registry.counter("steps").inc(4)
        assert registry.counter("steps").value == 5

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        clock = FixedClock(tick=0.5)
        with registry.timer("work", clock=clock).time():
            pass
        timer = registry.timer("work")
        assert timer.count == 1
        assert timer.total_seconds == 0.5
        assert timer.min_seconds <= timer.max_seconds
        assert timer.mean_seconds == timer.total_seconds

    def test_timer_default_clock_is_wall_time(self):
        timer = MetricsRegistry().timer("wall")
        assert timer.clock is time.perf_counter

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.histogram("loss").observe(value)
        histogram = registry.histogram("loss")
        assert histogram.count == 3
        assert histogram.mean == 2.0
        assert histogram.min_value == 1.0
        assert histogram.max_value == 3.0

    def test_snapshot_covers_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.timer("b").observe(0.5)
        registry.histogram("c").observe(1.0)
        names = {event["name"] for event in registry.snapshot()}
        assert names == {"a", "b", "c"}
        assert all(event["kind"] == "metric" for event in registry.snapshot())

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.counter("a").value == 0


class TestSinks:
    def test_in_memory_sink_collects(self):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        registry.emit({"kind": "train_step", "loss": 1.0})
        registry.emit({"kind": "pipeline_run"})
        assert len(sink.events) == 2
        assert len(sink.of_kind("train_step")) == 1

    def test_jsonl_sink_is_lazy_and_parseable(self, tmp_path):
        path = tmp_path / "sub" / "metrics.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # nothing written yet
        sink.emit({"kind": "train_step", "loss": 0.5})
        sink.emit({"kind": "metric", "name": "x", "value": 1})
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["train_step", "metric"]
        assert sink.events_written == 2

    def test_stdout_table_sink_renders(self, capsys):
        sink = StdoutTableSink()
        sink.emit({"kind": "train_step", "source": "pretrain", "step": 0,
                   "loss": 1.25, "lr": 1e-3, "grad_norm": 0.5,
                   "wall_time": 0.1, "tokens": 100})
        sink.emit({"kind": "profile_op", "op": "matmul", "calls": 3,
                   "forward_seconds": 0.01, "backward_calls": 2,
                   "backward_seconds": 0.02, "bytes": 1024})
        sink.emit({"kind": "pipeline_run", "model": "bert"})
        sink.flush()
        out = capsys.readouterr().out
        assert "train steps" in out
        assert "matmul" in out
        assert "[pipeline_run] model=bert" in out

    def test_sink_attached_detaches_and_closes(self):
        registry = MetricsRegistry()
        with registry.sink_attached(InMemorySink()) as sink:
            registry.emit({"kind": "metric"})
        assert registry.sinks == ()
        assert len(sink.events) == 1
        registry.emit({"kind": "metric"})
        assert len(sink.events) == 1  # no longer attached


class TestGlobalRegistry:
    def test_using_registry_swaps_and_restores(self):
        original = get_registry()
        replacement = MetricsRegistry()
        with using_registry(replacement):
            assert get_registry() is replacement
        assert get_registry() is original

    def test_set_telemetry_disables_emission(self):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        previous = set_telemetry(False)
        try:
            assert not telemetry_enabled()
            registry.emit({"kind": "train_step"})
            emit_train_record(TrainRecord(step=0, loss=1.0),
                              source="pretrain", registry=registry)
            assert sink.events == []
        finally:
            set_telemetry(previous)


class TestEmitTrainRecord:
    def test_updates_instruments_and_sinks(self):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        record = TrainRecord(step=0, loss=2.0, lr=1e-3, wall_time=0.5,
                             tokens=100, extras={"epoch": 0})
        emit_train_record(record, source="finetune", registry=registry)
        assert registry.counter("finetune.steps").value == 1
        assert registry.counter("finetune.tokens").value == 100
        assert registry.timer("finetune.step_seconds").count == 1
        assert registry.histogram("finetune.loss").mean == 2.0
        (event,) = sink.of_kind("train_step")
        assert event["source"] == "finetune"
        assert event["loss"] == 2.0
        assert event["epoch"] == 0


class TestPercentiles:
    def test_reservoir_nearest_rank(self):
        from repro.runtime.registry import _Reservoir

        reservoir = _Reservoir(capacity=100)
        assert reservoir.percentile(99.0) == 0.0        # empty → 0
        for value in range(1, 101):                     # 1..100
            reservoir.add(float(value))
        assert reservoir.percentile(50.0) == 50.0
        assert reservoir.percentile(99.0) == 99.0
        assert reservoir.percentile(100.0) == 100.0
        assert reservoir.percentile(0.0) == 1.0

    def test_reservoir_ring_keeps_recent_window(self):
        from repro.runtime.registry import _Reservoir

        reservoir = _Reservoir(capacity=4)
        for value in (1.0, 1.0, 1.0, 1.0):
            reservoir.add(value)
        for value in (9.0, 9.0, 9.0, 9.0):              # overwrite the ring
            reservoir.add(value)
        assert reservoir.percentile(50.0) == 9.0
        assert len(reservoir) == 4

    def test_reservoir_rejects_empty_capacity(self):
        from repro.runtime.registry import _Reservoir

        with pytest.raises(ValueError):
            _Reservoir(capacity=0)

    def test_histogram_snapshot_has_percentiles(self):
        from repro.runtime import Histogram

        histogram = Histogram("serve.queue_depth")
        for value in range(100):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot["p50"] == 49.0
        assert snapshot["p99"] == 98.0
        assert Histogram("empty").snapshot()["p99"] == 0.0

    def test_timer_percentiles(self):
        from repro.runtime import Timer

        timer = Timer("serve.latency_seconds")
        for value in range(1, 11):
            timer.observe(value / 10.0)
        assert timer.percentile(50.0) == pytest.approx(0.5)
        snapshot = timer.snapshot()
        assert snapshot["p99_seconds"] == pytest.approx(1.0)
        assert snapshot["p50_seconds"] == pytest.approx(0.5)
