"""End-to-end telemetry: TrainRecord emission from every training loop."""

import json

import numpy as np
import pytest

from repro.corpus import build_imputation_dataset, split_tables
from repro.pretrain import PretrainConfig, Pretrainer
from repro.runtime import (
    InMemorySink,
    MetricsRegistry,
    TrainRecord,
    using_registry,
)
from repro.tasks import (
    FinetuneConfig,
    ValueImputer,
    build_value_vocabulary_from_tables,
    finetune,
)


class TestPretrainTelemetry:
    def test_train_returns_train_records(self, bert, wiki_tables):
        history = Pretrainer(bert, PretrainConfig(steps=3, batch_size=2)
                             ).train(wiki_tables)
        assert all(isinstance(r, TrainRecord) for r in history)
        assert all(r.wall_time > 0 for r in history)
        assert all(r.tokens > 0 for r in history)
        assert all(r.mlm_loss >= 0 for r in history)  # extras survive

    def test_train_emits_step_events(self, bert, wiki_tables):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        with using_registry(registry):
            Pretrainer(bert, PretrainConfig(steps=3, batch_size=2)
                       ).train(wiki_tables)
        events = sink.of_kind("train_step")
        assert len(events) == 3
        assert all(e["source"] == "pretrain" for e in events)
        assert registry.counter("pretrain.steps").value == 3
        assert registry.counter("pretrain.tokens").value > 0


class TestFinetuneTelemetry:
    @pytest.fixture
    def task_and_examples(self, bert, wiki_tables):
        examples = build_imputation_dataset(
            wiki_tables, np.random.default_rng(0), per_table=2)
        vocabulary = build_value_vocabulary_from_tables(wiki_tables,
                                                        text_only=True)
        return (ValueImputer(bert, vocabulary, np.random.default_rng(0)),
                examples)

    def test_finetune_returns_train_records(self, task_and_examples):
        task, examples = task_and_examples
        history = finetune(task, examples,
                           FinetuneConfig(epochs=1, batch_size=8))
        assert all(isinstance(r, TrainRecord) for r in history)
        assert [r.step for r in history] == list(range(len(history)))
        assert all(r.wall_time > 0 for r in history)
        assert all(r.epoch == 0 for r in history)

    def test_finetune_emits_step_events(self, task_and_examples):
        task, examples = task_and_examples
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        with using_registry(registry):
            history = finetune(task, examples,
                               FinetuneConfig(epochs=1, batch_size=8))
        events = sink.of_kind("train_step")
        assert len(events) == len(history)
        assert all(e["source"] == "finetune" for e in events)


class TestPipelineTelemetry:
    def test_metrics_out_writes_parseable_jsonl(self, wiki_tables, tokenizer,
                                                config, tmp_path):
        from repro.core import run_imputation_pipeline

        path = tmp_path / "metrics.jsonl"
        result = run_imputation_pipeline(
            wiki_tables, model_name="bert", tokenizer=tokenizer,
            config=config,
            pretrain_config=PretrainConfig(steps=2, batch_size=4),
            finetune_config=FinetuneConfig(epochs=1, batch_size=8),
            metrics_out=path)
        assert all(isinstance(r, TrainRecord)
                   for r in result.pretrain_history + result.finetune_history)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        sources = {e.get("source") for e in events
                   if e["kind"] == "train_step"}
        assert sources == {"pretrain", "finetune"}
        (run_event,) = [e for e in events if e["kind"] == "pipeline_run"]
        assert run_event["pretrain_steps"] == 2

    def test_split_rngs_are_independent(self, wiki_tables):
        """Test-set sampling must not depend on the train split's draws.

        Regression test: one shared generator made test examples a
        function of how many draws the train split consumed.
        """
        train_tables, _, test_tables = split_tables(wiki_tables)
        seed = 7
        _, test_seq = np.random.SeedSequence(seed).spawn(2)
        expected = build_imputation_dataset(
            test_tables, np.random.default_rng(test_seq), per_table=2)
        # Regardless of train-split size, the pipeline's test examples
        # come from the dedicated generator:
        for cut in (len(train_tables), len(train_tables) // 2):
            train_seq, test_seq = np.random.SeedSequence(seed).spawn(2)
            build_imputation_dataset(train_tables[:cut],
                                     np.random.default_rng(train_seq),
                                     per_table=2)
            got = build_imputation_dataset(
                test_tables, np.random.default_rng(test_seq), per_table=2)
            assert [(e.table.table_id, e.row, e.column) for e in got] == \
                   [(e.table.table_id, e.row, e.column) for e in expected]
