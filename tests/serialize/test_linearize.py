"""Tests for the four linearization strategies."""

import numpy as np
import pytest

from repro.serialize import (
    SERIALIZERS,
    ColumnMajorSerializer,
    MarkdownSerializer,
    RowMajorSerializer,
    TemplateSerializer,
    TokenRole,
)
from repro.tables import Table, TableContext
from repro.text import train_tokenizer


@pytest.fixture(scope="module")
def tokenizer():
    corpus = [
        "country capital population australia sydney canberra france paris",
        "japan tokyo 25.69 67.75 125.7 row one two three is | ; - germany berlin",
        "population in million by country column",
    ] * 4
    return train_tokenizer(corpus, vocab_size=600)


def detok(tokens):
    """Rebuild readable text from wordpiece tokens."""
    words = []
    for token in tokens:
        if token.startswith("##") and words:
            words[-1] += token[2:]
        else:
            words.append(token)
    return " ".join(words)


@pytest.fixture
def sample():
    return Table(
        ["Country", "Capital", "Population"],
        [["Australia", "Canberra", 25.69], ["France", "Paris", 67.75]],
        context=TableContext(title="Population in Million by Country"),
    )


class TestRowMajor:
    def test_starts_with_cls_context(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample)
        assert out.tokens[0] == "[CLS]"
        start, end = out.context_span
        assert "population" in detok(out.tokens[start:end])

    def test_cell_spans_cover_all_cells(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample)
        assert set(out.cell_spans) == {(r, c) for r in range(2) for c in range(3)}

    def test_cell_span_tokens_match_value(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample)
        start, end = out.cell_spans[(1, 1)]
        assert detok(out.tokens[start:end]) == "paris"

    def test_header_spans(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample)
        start, end = out.header_spans[0]
        assert detok(out.tokens[start:end]) == "country"

    def test_row_ids_assigned(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample)
        start, _ = out.cell_spans[(1, 2)]
        assert out.row_ids[start] == 2  # 1-based data rows
        header_start, _ = out.header_spans[2]
        assert out.row_ids[header_start] == 0

    def test_column_ids_assigned(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample)
        start, _ = out.cell_spans[(0, 1)]
        assert out.column_ids[start] == 2

    def test_roles_assigned(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample)
        assert out.roles[0] == TokenRole.SPECIAL
        cell_start, _ = out.cell_spans[(0, 0)]
        assert out.roles[cell_start] == TokenRole.CELL

    def test_rows_separated_by_sep(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample)
        sep_count = out.tokens.count("[SEP]")
        assert sep_count >= sample.num_rows + 1

    def test_empty_cell_gets_empty_token(self, tokenizer):
        table = Table(["a", "b"], [["x", None]])
        out = RowMajorSerializer(tokenizer).serialize(table)
        start, end = out.cell_spans[(0, 1)]
        assert out.tokens[start:end] == ["[EMPTY]"]


class TestContextPlacement:
    def test_table_first_puts_context_late(self, tokenizer, sample):
        first = RowMajorSerializer(tokenizer, context_first=True).serialize(sample)
        last = RowMajorSerializer(tokenizer, context_first=False).serialize(sample)
        assert first.context_span[0] < first.cell_spans[(0, 0)][0]
        assert last.context_span[0] > last.cell_spans[(0, 0)][0]

    def test_context_override(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample, context="france capital")
        start, end = out.context_span
        assert detok(out.tokens[start:end]) == "france capital"

    def test_no_context(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer).serialize(sample, context="")
        assert out.context_span == (0, 0)


class TestColumnMajor:
    def test_column_grouping(self, tokenizer, sample):
        out = ColumnMajorSerializer(tokenizer).serialize(sample)
        # Within a column, header precedes all its data cells.
        h_start, _ = out.header_spans[1]
        c0_start, _ = out.cell_spans[(0, 1)]
        c1_start, _ = out.cell_spans[(1, 1)]
        assert h_start < c0_start < c1_start
        # And all of column 1 precedes column 2's header.
        h2_start, _ = out.header_spans[2]
        assert c1_start < h2_start

    def test_same_cells_as_row_major(self, tokenizer, sample):
        row = RowMajorSerializer(tokenizer).serialize(sample)
        col = ColumnMajorSerializer(tokenizer).serialize(sample)
        assert set(row.cell_spans) == set(col.cell_spans)


class TestTemplate:
    def test_reads_as_sentences(self, tokenizer, sample):
        out = TemplateSerializer(tokenizer).serialize(sample)
        text = detok(out.tokens)
        assert "row one" in text
        assert "country is australia" in text

    def test_headers_repeat_per_row(self, tokenizer, sample):
        out = TemplateSerializer(tokenizer).serialize(sample)
        assert detok(out.tokens).count("capital is") == 2

    def test_headerless_columns_get_placeholder(self, tokenizer):
        table = Table(["", ""], [["x", "y"]])
        out = TemplateSerializer(tokenizer).serialize(table)
        assert "column one" in detok(out.tokens)


class TestMarkdown:
    def test_pipe_layout(self, tokenizer, sample):
        out = MarkdownSerializer(tokenizer).serialize(sample)
        assert out.tokens.count("|") > 6

    def test_cell_spans_present(self, tokenizer, sample):
        out = MarkdownSerializer(tokenizer).serialize(sample)
        assert len(out.cell_spans) == 6


class TestTruncation:
    def test_long_table_truncated_to_budget(self, tokenizer):
        table = Table(
            ["Country", "Capital"],
            [[f"country {i}", f"city {i}"] for i in range(200)],
        )
        out = RowMajorSerializer(tokenizer, max_tokens=64).serialize(table)
        assert len(out) <= 64
        assert out.truncated_cells > 0
        assert out.num_rows_serialized >= 1

    def test_short_table_not_truncated(self, tokenizer, sample):
        out = RowMajorSerializer(tokenizer, max_tokens=256).serialize(sample)
        assert out.truncated_cells == 0

    def test_min_budget_validated(self, tokenizer):
        with pytest.raises(ValueError):
            RowMajorSerializer(tokenizer, max_tokens=4)


class TestRegistry:
    def test_all_serializers_registered(self):
        assert set(SERIALIZERS) == {"row_major", "column_major", "template", "markdown"}

    def test_every_serializer_produces_aligned_arrays(self, tokenizer, sample):
        for cls in SERIALIZERS.values():
            out = cls(tokenizer).serialize(sample)
            n = len(out)
            assert out.token_ids.shape == (n,)
            assert out.roles.shape == (n,)
            assert out.row_ids.shape == (n,)
            assert out.column_ids.shape == (n,)
