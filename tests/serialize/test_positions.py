"""Tests for feature extraction and batch padding."""

import numpy as np
import pytest

from repro.serialize import RowMajorSerializer, encode_features, pad_batch
from repro.tables import Table
from repro.text import train_tokenizer


@pytest.fixture(scope="module")
def tokenizer():
    return train_tokenizer(["alpha beta gamma delta one two three | ; a b c d"],
                           vocab_size=200)


def make_table(rows):
    return Table(["a", "b"], [[f"alpha {i}", f"beta {i}"] for i in range(rows)])


class TestEncodeFeatures:
    def test_arrays_aligned(self, tokenizer):
        serialized = RowMajorSerializer(tokenizer).serialize(make_table(3))
        features = encode_features(serialized)
        n = len(serialized)
        assert len(features) == n
        assert features.positions.tolist() == list(range(n))

    def test_row_clamping(self, tokenizer):
        serialized = RowMajorSerializer(tokenizer).serialize(make_table(10))
        features = encode_features(serialized, max_row_id=4)
        assert features.row_ids.max() == 4
        assert serialized.row_ids.max() == 10  # original untouched

    def test_column_clamping(self, tokenizer):
        table = Table([f"c{i}" for i in range(6)], [[str(i) for i in range(6)]])
        serialized = RowMajorSerializer(tokenizer).serialize(table)
        features = encode_features(serialized, max_column_id=3)
        assert features.column_ids.max() == 3


class TestPadBatch:
    def test_padding_to_longest(self, tokenizer):
        serializer = RowMajorSerializer(tokenizer)
        features = [encode_features(serializer.serialize(make_table(n))) for n in (1, 4)]
        batch = pad_batch(features, pad_id=0)
        assert batch.batch_size == 2
        assert batch.seq_len == max(len(f) for f in features)
        assert batch.lengths.tolist() == [len(features[0]), len(features[1])]

    def test_pad_value_used(self, tokenizer):
        serializer = RowMajorSerializer(tokenizer)
        features = [encode_features(serializer.serialize(make_table(n))) for n in (1, 4)]
        batch = pad_batch(features, pad_id=0)
        assert np.all(batch.token_ids[0, batch.lengths[0]:] == 0)

    def test_key_padding_mask(self, tokenizer):
        serializer = RowMajorSerializer(tokenizer)
        features = [encode_features(serializer.serialize(make_table(n))) for n in (1, 3)]
        batch = pad_batch(features, pad_id=0)
        mask = batch.key_padding_mask()
        assert mask.shape == (2, 1, 1, batch.seq_len)
        assert mask[0, 0, 0, batch.lengths[0]]
        assert not mask[0, 0, 0, 0]

    def test_token_validity(self, tokenizer):
        serializer = RowMajorSerializer(tokenizer)
        features = [encode_features(serializer.serialize(make_table(n))) for n in (1, 3)]
        batch = pad_batch(features, pad_id=0)
        validity = batch.token_validity()
        assert validity.sum() == batch.lengths.sum()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            pad_batch([], pad_id=0)


class TestNumericFeatures:
    def test_numeric_cells_flagged(self, tokenizer):
        from repro.tables import Table
        table = Table(["name", "score"], [["ann", 12.5], ["bob", -3.0]])
        serialized = RowMajorSerializer(tokenizer).serialize(table)
        features = encode_features(serialized, table=table)
        start, end = serialized.cell_spans[(0, 1)]
        assert features.numeric_features[start, 0] == 1.0
        assert features.numeric_features[start, 1] == 1.0
        assert features.numeric_features[start, 2] > 0

    def test_negative_sign_captured(self, tokenizer):
        from repro.tables import Table
        table = Table(["v"], [[-3.0]])
        serialized = RowMajorSerializer(tokenizer).serialize(table)
        features = encode_features(serialized, table=table)
        start, _ = serialized.cell_spans[(0, 0)]
        assert features.numeric_features[start, 1] == -1.0

    def test_text_cells_zero(self, tokenizer):
        from repro.tables import Table
        table = Table(["name"], [["ann"]])
        serialized = RowMajorSerializer(tokenizer).serialize(table)
        features = encode_features(serialized, table=table)
        start, _ = serialized.cell_spans[(0, 0)]
        assert (features.numeric_features[start] == 0).all()

    def test_without_table_all_zero(self, tokenizer):
        serialized = RowMajorSerializer(tokenizer).serialize(make_table(2))
        features = encode_features(serialized)
        assert (features.numeric_features == 0).all()

    def test_batched_numeric_padded(self, tokenizer):
        from repro.tables import Table
        serializer = RowMajorSerializer(tokenizer)
        tables = [Table(["v"], [[7.0]]), Table(["v"], [[1.0], [2.0], [3.0]])]
        features = [encode_features(serializer.serialize(t), table=t)
                    for t in tables]
        batch = pad_batch(features, pad_id=0)
        assert batch.numeric_features.shape == (2, batch.seq_len, 3)
        assert (batch.numeric_features[0, batch.lengths[0]:] == 0).all()
