"""Shared fixtures for serving tests: a tiny corpus and encoder."""

import numpy as np
import pytest

from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig, TableBert
from repro.text import train_tokenizer


@pytest.fixture(scope="session")
def serve_tables():
    return generate_wiki_corpus(KnowledgeBase(seed=0), 8, seed=0)


@pytest.fixture(scope="session")
def serve_tokenizer(serve_tables):
    texts = []
    for table in serve_tables:
        texts.append(table.context.text())
        texts.append(" ".join(table.header))
        texts.extend(cell.text() for _, _, cell in table.iter_cells())
    return train_tokenizer(texts, vocab_size=600)


@pytest.fixture(scope="session")
def serve_config(serve_tokenizer):
    return EncoderConfig(
        vocab_size=len(serve_tokenizer.vocab), dim=16, num_heads=2,
        num_layers=1, hidden_dim=32, max_position=160, num_entities=64,
    )


@pytest.fixture
def encoder(serve_config, serve_tokenizer):
    return TableBert(serve_config, serve_tokenizer, np.random.default_rng(0))
