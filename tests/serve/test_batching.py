"""DynamicBatcher flush semantics under a controllable fake clock."""

import pytest

from repro.serve import BatchPolicy, DynamicBatcher


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_seconds=-1.0)


class TestDeadlineFlush:
    def test_not_due_before_deadline(self, clock):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8,
                                             max_wait_seconds=0.5),
                                 clock=clock)
        batcher.push("a")
        clock.advance(0.49)
        assert not batcher.due()
        assert batcher.pop_batch() == []

    def test_due_at_deadline(self, clock):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8,
                                             max_wait_seconds=0.5),
                                 clock=clock)
        batcher.push("a")
        clock.advance(0.5)
        assert batcher.due()
        [(item, arrived)] = batcher.pop_batch()
        assert item == "a"
        assert arrived == 0.0
        assert len(batcher) == 0

    def test_deadline_tracks_oldest(self, clock):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8,
                                             max_wait_seconds=0.5),
                                 clock=clock)
        batcher.push("old")
        clock.advance(0.3)
        batcher.push("young")
        assert batcher.next_deadline() == pytest.approx(0.5)
        assert batcher.oldest_wait() == pytest.approx(0.3)
        clock.advance(0.2)
        # Deadline flush carries the whole queue, not just the old item.
        assert [item for item, _ in batcher.pop_batch()] == ["old", "young"]


class TestSizeFlush:
    def test_full_batch_releases_immediately(self, clock):
        batcher = DynamicBatcher(BatchPolicy(max_batch=3,
                                             max_wait_seconds=10.0),
                                 clock=clock)
        for item in "abc":
            batcher.push(item)
        assert batcher.due()
        assert [item for item, _ in batcher.pop_batch()] == ["a", "b", "c"]

    def test_remainder_waits(self, clock):
        batcher = DynamicBatcher(BatchPolicy(max_batch=2,
                                             max_wait_seconds=10.0),
                                 clock=clock)
        for item in "abc":
            batcher.push(item)
        assert [item for item, _ in batcher.pop_batch()] == ["a", "b"]
        # "c" alone is below max_batch and under its deadline.
        assert not batcher.due()
        assert len(batcher) == 1

    def test_force_drains_regardless(self, clock):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8,
                                             max_wait_seconds=10.0),
                                 clock=clock)
        batcher.push("a")
        assert [item for item, _ in batcher.pop_batch(force=True)] == ["a"]

    def test_empty_queue(self, clock):
        batcher = DynamicBatcher(clock=clock)
        assert not batcher.due()
        assert batcher.oldest_wait() == 0.0
        assert batcher.next_deadline() is None
        assert batcher.pop_batch(force=True) == []
