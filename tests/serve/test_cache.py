"""EncodingCache: hits, LRU eviction, fingerprint invalidation, dedup."""

import numpy as np
import pytest

from repro.runtime import MetricsRegistry, using_registry
from repro.serve import (EncodingCache, feature_fingerprint,
                         model_fingerprint, table_fingerprint)
from repro.tables import Table


def _features(encoder, table, context=None):
    serialized = encoder.serialize(table, context)
    return encoder.features(serialized, table=table)


class TestFingerprints:
    def test_feature_fingerprint_is_content_addressed(self, encoder,
                                                      serve_tables):
        a = feature_fingerprint(_features(encoder, serve_tables[0]))
        b = feature_fingerprint(_features(encoder, serve_tables[0]))
        c = feature_fingerprint(_features(encoder, serve_tables[1]))
        assert a == b
        assert a != c

    def test_context_changes_fingerprint(self, encoder, serve_tables):
        plain = feature_fingerprint(_features(encoder, serve_tables[0]))
        with_q = feature_fingerprint(
            _features(encoder, serve_tables[0], "what is this?"))
        assert plain != with_q

    def test_table_fingerprint_ignores_table_id(self, serve_tables):
        table = serve_tables[0]
        twin = Table(table.header, table.rows, table.context, "other-id")
        assert table_fingerprint(table) == table_fingerprint(twin)
        assert table_fingerprint(table) != table_fingerprint(
            table, "a question")
        assert table_fingerprint(table) != table_fingerprint(serve_tables[1])

    def test_model_fingerprint_tracks_weights(self, encoder):
        before = model_fingerprint(encoder)
        assert before == model_fingerprint(encoder)
        name, param = next(iter(encoder.named_parameters()))
        param.data = param.data + 1e-3
        assert model_fingerprint(encoder) != before


class TestLookupStore:
    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            EncodingCache(max_entries=0)

    def test_lru_eviction_order(self):
        cache = EncodingCache(max_entries=2)
        one, two, three = (("m", k) for k in "abc")
        cache.store(one, np.zeros(1))
        cache.store(two, np.zeros(1))
        cache.lookup(one)                     # refresh: two is now LRU
        cache.store(three, np.zeros(1))
        assert cache.lookup(two) is None
        assert cache.lookup(one) is not None
        assert cache.lookup(three) is not None
        assert cache.evictions == 1


class TestHiddenFor:
    def test_hit_skips_encoder_forward(self, encoder, serve_tables):
        cache = EncodingCache()
        features = [_features(encoder, serve_tables[0])]
        with encoder.inference():
            first = cache.hidden_for(encoder, features)
            calls = {"n": 0}
            original = encoder.forward

            def counting(batch):
                calls["n"] += 1
                return original(batch)

            encoder.forward = counting
            second = cache.hidden_for(encoder, features)
        assert calls["n"] == 0
        assert cache.hits == 1 and cache.misses == 1
        np.testing.assert_array_equal(first[0], second[0])

    def test_weight_update_invalidates(self, encoder, serve_tables):
        cache = EncodingCache()
        features = [_features(encoder, serve_tables[0])]
        with encoder.inference():
            cache.hidden_for(encoder, features)
            name, param = next(iter(encoder.named_parameters()))
            param.data = param.data + 1e-3
            cache.hidden_for(encoder, features)
        assert cache.misses == 2 and cache.hits == 0

    def test_within_batch_dedup(self, encoder, serve_tables):
        cache = EncodingCache()
        features = [_features(encoder, serve_tables[0]) for _ in range(3)]
        features.append(_features(encoder, serve_tables[1]))
        with encoder.inference():
            out = cache.hidden_for(encoder, features)
        # 3 identical requests cost one forward row: 2 in-flight hits.
        assert cache.misses == 2 and cache.hits == 2
        np.testing.assert_array_equal(out[0], out[1])
        np.testing.assert_array_equal(out[0], out[2])
        assert out[0].shape != out[3].shape or not np.array_equal(out[0],
                                                                  out[3])

    def test_features_memo_skips_serialization(self, encoder, serve_tables):
        cache = EncodingCache()
        tables = [serve_tables[0], serve_tables[0]]
        first_ser, first_feats = cache.features_for(encoder, tables,
                                                    [None, None])
        calls = {"n": 0}
        original = encoder.serialize

        def counting(table, context=None):
            calls["n"] += 1
            return original(table, context)

        encoder.serialize = counting
        second_ser, second_feats = cache.features_for(encoder, tables,
                                                      [None, None])
        encoder.serialize = original
        assert calls["n"] == 0
        assert second_ser[0] is first_ser[0]
        np.testing.assert_array_equal(first_feats[0].token_ids,
                                      second_feats[0].token_ids)

    def test_features_memo_returns_mutable_copies(self, encoder,
                                                  serve_tables):
        cache = EncodingCache()
        (_, [feats]) = cache.features_for(encoder, serve_tables[:1], [None])
        pristine = feats.token_ids.copy()
        feats.token_ids[:] = -1     # a feature_hook mutating in place
        (_, [again]) = cache.features_for(encoder, serve_tables[:1], [None])
        np.testing.assert_array_equal(again.token_ids, pristine)

    def test_counters_reach_registry(self, encoder, serve_tables):
        registry = MetricsRegistry()
        with using_registry(registry):
            cache = EncodingCache()
            features = [_features(encoder, serve_tables[0])]
            with encoder.inference():
                cache.hidden_for(encoder, features)
                cache.hidden_for(encoder, features)
        snapshot = {s["name"]: s for s in registry.snapshot()}
        assert snapshot["serve.cache.hits"]["value"] == 1
        assert snapshot["serve.cache.misses"]["value"] == 1
