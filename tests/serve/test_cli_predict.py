"""End-to-end `repro predict` / `repro serve` through cli.main()."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.tables import save_table


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus")
    for table in generate_wiki_corpus(KnowledgeBase(seed=0), 6, seed=0):
        save_table(table, root / f"{table.table_id}.csv")
    return root


def _inline_table(corpus_dir):
    import csv

    path = sorted(corpus_dir.glob("*.csv"))[0]
    with open(path) as handle:
        rows = list(csv.reader(handle))
    return {"header": rows[0], "rows": rows[1:4], "title": "demo"}


class TestPredictCommand:
    def test_jsonl_round_trip(self, corpus_dir, tmp_path, capsys):
        table = _inline_table(corpus_dir)
        requests = [
            {"task": "qa", "table": table, "question": "which one?"},
            {"task": "nli", "table": table, "statement": "it is so"},
            {"task": "coltype", "table": table, "column": 0},
            {"task": "retrieval", "query": "anything"},
            {"task": "qa", "table": table, "question": "which one?"},
        ]
        request_path = tmp_path / "requests.jsonl"
        request_path.write_text(
            "\n".join(json.dumps(r) for r in requests) + "\n")
        out_path = tmp_path / "responses.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"

        code = main(["predict", str(request_path), str(corpus_dir),
                     "--model", "bert", "--out", str(out_path),
                     "--metrics-out", str(metrics_path)])
        assert code == 0

        responses = [json.loads(line)
                     for line in out_path.read_text().splitlines()]
        assert [r["id"] for r in responses] == list(range(5))
        assert [r["task"] for r in responses] == [r["task"] for r in requests]
        # The duplicated QA request shares its batch and its answer.
        assert responses[0]["label"] == responses[4]["label"]
        assert responses[0]["batch_size"] == 2
        events = [json.loads(line)
                  for line in metrics_path.read_text().splitlines()]
        assert sum(e.get("kind") == "serve_request" for e in events) == 5

    def test_bad_request_file_fails_with_line_number(self, corpus_dir,
                                                     tmp_path, capsys):
        request_path = tmp_path / "bad.jsonl"
        request_path.write_text('{"task": "qa"}\n')   # missing table
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", str(request_path), str(corpus_dir),
                  "--model", "bert"])
        assert excinfo.value.code == 2
        assert "bad.jsonl:1" in capsys.readouterr().err

    def test_missing_request_file(self, corpus_dir, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", str(tmp_path / "nope.jsonl"), str(corpus_dir)])
        assert excinfo.value.code == 2


class TestServeEndpoints:
    def test_http_round_trip(self, corpus_dir):
        import numpy as np

        from repro.cli import _load_corpus_dir, _resolve_model
        from repro.serve import (InferenceEngine, ServeConfig,
                                 build_predictor, make_server)
        from repro.serve.requests import SERVED_TASKS

        tables = _load_corpus_dir(str(corpus_dir))
        model = _resolve_model("bert", tables, 0)
        rng = np.random.default_rng(0)
        predictors = {task: build_predictor(task, model, tables, rng)
                      for task in SERVED_TASKS}
        engine = InferenceEngine(predictors, ServeConfig())
        server = make_server(engine, "127.0.0.1", 0)
        port = server.server_address[1]

        def call(path, payload=None):
            worker = threading.Thread(target=server.handle_request)
            worker.start()
            data = None if payload is None else json.dumps(payload).encode()
            try:
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}{path}", data=data,
                        timeout=30) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())
            finally:
                worker.join()

        try:
            status, health = call("/healthz")
            assert status == 200 and health["status"] == "ok"
            assert set(health["tasks"]) == set(SERVED_TASKS)

            table = _inline_table(corpus_dir)
            status, body = call("/predict", {"task": "nli", "table": table,
                                             "statement": "hello"})
            assert status == 200 and body["label"] in (0, 1)

            status, body = call("/predict", [
                {"task": "qa", "table": table, "question": "q?"},
                {"task": "qa", "table": table, "question": "q?"},
            ])
            assert status == 200 and len(body) == 2
            assert body[0]["batch_size"] == 2

            status, body = call("/predict", {"task": "unknown"})
            assert status == 400 and "error" in body

            status, metrics = call("/metrics")
            names = {m.get("name") for m in metrics}
            assert "serve.requests" in names
        finally:
            server.server_close()


class TestServeOperatorErrors:
    """Bad serve knobs are operator errors: exit 2, one line, no traceback."""

    @pytest.mark.parametrize("flags, fragment", [
        (["--replicas", "-1"], "replicas"),
        (["--deadline-ms", "-5"], "deadline_ms"),
        (["--max-queue", "0"], "max_queue"),
    ])
    def test_invalid_knobs_exit_2(self, corpus_dir, flags, fragment, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(corpus_dir), "--model", "bert", *flags])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and fragment in err
