"""InferenceEngine: dispatch, deadlines, telemetry, request decoding."""

import numpy as np
import pytest

from repro.corpus import NLIExample
from repro.runtime import InMemorySink, MetricsRegistry, using_registry
from repro.serve import (
    InferenceEngine,
    RequestError,
    ServeConfig,
    build_example,
    build_predictor,
    json_safe_label,
    parse_table,
)
from repro.serve.requests import SERVED_TASKS
from repro.sql import Aggregate, SelectQuery
from repro.tasks import NliClassifier


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def nli(encoder):
    return NliClassifier(encoder, np.random.default_rng(0))


def _example(tables, i=0, statement="a statement"):
    return NLIExample(tables[i], statement, 0)


class TestDispatch:
    def test_submit_unknown_task(self, nli):
        engine = InferenceEngine({"nli": nli})
        with pytest.raises(KeyError):
            engine.submit("qa", object())

    def test_poll_answers_due_batches_only(self, nli, serve_tables):
        clock = FakeClock()
        engine = InferenceEngine(
            {"nli": nli}, ServeConfig(max_batch=2, max_wait_seconds=0.5),
            clock=clock)
        engine.submit("nli", _example(serve_tables))
        assert engine.poll() == []                  # under deadline, under size
        clock.advance(0.5)
        responses = engine.poll()                   # deadline flush
        assert len(responses) == 1
        assert responses[0].latency_seconds == pytest.approx(0.5)
        assert engine.queue_depth == 0

    def test_size_flush_before_deadline(self, nli, serve_tables):
        clock = FakeClock()
        engine = InferenceEngine(
            {"nli": nli}, ServeConfig(max_batch=2, max_wait_seconds=100.0),
            clock=clock)
        engine.submit("nli", _example(serve_tables, 0))
        engine.submit("nli", _example(serve_tables, 1))
        responses = engine.poll()
        assert [r.batch_size for r in responses] == [2, 2]

    def test_process_preserves_submission_order(self, nli, serve_tables):
        engine = InferenceEngine({"nli": nli}, ServeConfig(max_batch=4))
        submissions = [("nli", _example(serve_tables, i % 3))
                       for i in range(6)]
        responses = engine.process(submissions)
        assert [r.request_id for r in responses] == list(range(6))
        assert all(r.task == "nli" for r in responses)

    def test_repeated_tables_hit_cache(self, nli, serve_tables):
        engine = InferenceEngine({"nli": nli}, ServeConfig(max_batch=4))
        example = _example(serve_tables)
        first = engine.process([("nli", example)])
        second = engine.process([("nli", example)])
        assert engine.cache.hits >= 1
        assert first[0].prediction.label == second[0].prediction.label
        assert first[0].prediction.score == pytest.approx(
            second[0].prediction.score)


class TestTelemetry:
    def test_counters_histograms_traces(self, nli, serve_tables):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        with using_registry(registry):
            engine = InferenceEngine({"nli": nli}, ServeConfig(max_batch=2))
            engine.process([("nli", _example(serve_tables, i))
                            for i in range(3)])
        snapshot = {s["name"]: s for s in registry.snapshot()
                    if s.get("metric")}
        assert snapshot["serve.requests"]["value"] == 3
        assert snapshot["serve.batches"]["value"] == 2
        assert snapshot["serve.batch_size"]["count"] == 2
        assert snapshot["serve.batch_size"]["max"] == 2
        assert snapshot["serve.queue_depth"]["count"] == 3
        assert snapshot["serve.latency_seconds"]["count"] == 3
        traces = sink.of_kind("serve_request")
        assert len(traces) == 3
        assert {t["id"] for t in traces} == {0, 1, 2}
        assert all(t["task"] == "nli" for t in traces)


class TestRequestDecoding:
    def test_parse_inline_table(self):
        table = parse_table({"header": ["a", "b"], "rows": [["1", "2"]],
                             "title": "t"})
        assert table.header == ["a", "b"]
        assert table.context.title == "t"

    def test_parse_table_errors(self, tmp_path):
        with pytest.raises(RequestError):
            parse_table(42)
        with pytest.raises(RequestError):
            parse_table({"header": ["a"]})
        with pytest.raises(RequestError):
            parse_table(str(tmp_path / "missing.csv"))
        with pytest.raises(RequestError):
            parse_table({"header": ["a"], "rows": [["1", "2"]]})

    def test_build_example_validates(self):
        table = {"header": ["a"], "rows": [["1"]]}
        with pytest.raises(RequestError):
            build_example("qa", {"table": table})          # no question
        with pytest.raises(RequestError):
            build_example("imputation", {"table": table, "row": 5,
                                         "column": 0})     # out of range
        with pytest.raises(RequestError):
            build_example("nope", {"table": table})
        example = build_example("nli", {"table": table, "statement": "s"})
        assert example.statement == "s"

    def test_build_predictor_covers_served_tasks(self, encoder, serve_tables):
        rng = np.random.default_rng(0)
        for task in SERVED_TASKS:
            predictor = build_predictor(task, encoder, serve_tables, rng)
            assert predictor.task_name in (task, "imputation")

    def test_json_safe_label(self):
        query = SelectQuery("col", Aggregate.COUNT, ())
        assert json_safe_label(query) == query.render()
        assert json_safe_label((1, 2)) == [1, 2]
        assert json_safe_label(np.int64(3)) == 3
        assert json_safe_label(None) is None
