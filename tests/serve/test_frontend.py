"""ReplicatedFrontend: admission, deadlines, routing, replica recovery."""

import threading

import numpy as np
import pytest

from repro.corpus import NLIExample, QAExample
from repro.runtime import InMemorySink, MetricsRegistry, using_registry
from repro.serve import (
    AdmissionQueue,
    FrontendConfig,
    InferenceEngine,
    ReplicatedFrontend,
    ServeConfig,
    ServeTicket,
)
from repro.tasks import CellSelectionQA, NliClassifier


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _ticket(request_id, affinity="k", deadline_at=None):
    return ServeTicket(request_id, "nli", object(), affinity, 0.0,
                       deadline_at)


def _engine(encoder, **config):
    nli = NliClassifier(encoder, np.random.default_rng(0))
    return InferenceEngine({"nli": nli}, ServeConfig(**config))


def _nli(tables, i=0, statement="a statement"):
    return NLIExample(tables[i], statement, 0)


class TestFrontendConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrontendConfig(replicas=-1)
        with pytest.raises(ValueError):
            FrontendConfig(max_queue=0)
        with pytest.raises(ValueError):
            FrontendConfig(deadline_seconds=-0.1)
        with pytest.raises(ValueError):
            FrontendConfig(max_batch=0)


class TestAdmissionQueue:
    def test_bound_sheds_overflow(self):
        queue = AdmissionQueue(2)
        assert queue.admit(_ticket(0))
        assert queue.admit(_ticket(1))
        assert not queue.admit(_ticket(2))
        assert len(queue) == 2

    def test_admit_many_is_atomic_and_partial(self):
        queue = AdmissionQueue(2)
        verdicts = queue.admit_many([_ticket(i) for i in range(3)])
        assert verdicts == [True, True, False]
        assert [t.request_id for t in queue.pop_any(5)] == [0, 1]

    def test_pop_expired_separates_by_deadline(self):
        queue = AdmissionQueue(4)
        queue.admit_many([_ticket(0, deadline_at=1.0),
                          _ticket(1, deadline_at=5.0),
                          _ticket(2, deadline_at=None)])
        expired = queue.pop_expired(now=2.0)
        assert [t.request_id for t in expired] == [0]
        assert [t.request_id for t in queue.pop_any(5)] == [1, 2]

    def test_pop_for_routes_by_slot_and_keeps_fifo(self):
        queue = AdmissionQueue(8)
        queue.admit_many([_ticket(i, affinity=str(i % 2))
                          for i in range(6)])
        evens = queue.pop_for(lambda t: int(t.affinity), 0, limit=2)
        assert [t.request_id for t in evens] == [0, 2]
        rest = queue.pop_any(10)
        assert [t.request_id for t in rest] == [1, 3, 4, 5]

    def test_requeue_goes_to_front(self):
        queue = AdmissionQueue(8)
        queue.admit_many([_ticket(0), _ticket(1)])
        recovered = queue.pop_any(1)
        queue.requeue(recovered)
        assert [t.request_id for t in queue.pop_any(10)] == [0, 1]


class TestServeTicket:
    def test_first_resolution_wins(self):
        ticket = _ticket(0)
        ticket.complete({"label": 1})
        ticket.fail("internal", "late", False)
        assert ticket.response == {"label": 1}
        assert ticket.error is None

    def test_expired(self):
        assert not _ticket(0, deadline_at=None).expired(1e9)
        assert _ticket(0, deadline_at=1.0).expired(2.0)
        assert not _ticket(0, deadline_at=1.0).expired(0.5)


class TestInProcessFrontend:
    def test_matches_single_engine_bytes(self, encoder, serve_tables):
        baseline = _engine(encoder).process(
            [("nli", _nli(serve_tables, i)) for i in range(3)])
        frontend = ReplicatedFrontend(_engine(encoder), FrontendConfig())
        with frontend:
            results = frontend.process(
                [("nli", _nli(serve_tables, i)) for i in range(3)],
                timeout=60)
        for reference, result in zip(baseline, results):
            assert result["label"] == reference.prediction.label
            assert result["score"] == reference.prediction.score

    def test_unknown_task_raises(self, encoder):
        frontend = ReplicatedFrontend(_engine(encoder))
        with pytest.raises(KeyError):
            frontend.submit("qa", object())

    def test_full_queue_sheds_with_retryable_error(self, encoder,
                                                   serve_tables):
        with using_registry(MetricsRegistry()) as registry:
            frontend = ReplicatedFrontend(
                _engine(encoder), FrontendConfig(max_queue=1))
            kept = frontend.submit("nli", _nli(serve_tables))
            shed = frontend.submit("nli", _nli(serve_tables))
            assert shed.done()
            assert shed.error["code"] == "overloaded"
            assert shed.error["retryable"] is True
            assert not kept.done()
            assert registry.counter("serve.frontend.shed").value == 1
            frontend.start()
            assert kept.wait(60) and kept.response is not None
            frontend.close()

    def test_expired_request_never_dispatched(self, encoder, serve_tables):
        """A ticket whose deadline passed in the queue must not reach a
        worker: the engine sees no work for it."""
        clock = FakeClock()
        engine = _engine(encoder)
        seen = []
        original = engine.process

        def spying_process(submissions):
            seen.extend(submissions)
            return original(submissions)

        engine.process = spying_process
        frontend = ReplicatedFrontend(
            engine, FrontendConfig(deadline_seconds=0.5), clock=clock)
        doomed = frontend.submit("nli", _nli(serve_tables))
        clock.advance(1.0)            # expires while queued, pre-dispatch
        frontend.start()
        assert doomed.wait(60)
        assert doomed.error["code"] == "deadline_exceeded"
        assert doomed.error["retryable"] is True
        assert seen == []             # never reached the engine
        fresh = frontend.submit("nli", _nli(serve_tables))
        assert fresh.wait(60) and fresh.response is not None
        assert len(seen) == 1         # dispatcher stayed healthy
        frontend.close()

    def test_atomic_batch_forms_one_wave(self, encoder, serve_tables):
        frontend = ReplicatedFrontend(_engine(encoder))
        with frontend:
            results = frontend.process(
                [("nli", _nli(serve_tables)), ("nli", _nli(serve_tables))],
                timeout=60)
        assert [r["batch_size"] for r in results] == [2, 2]
        assert results[0]["label"] == results[1]["label"]

    def test_healthz_gauges(self, encoder, serve_tables):
        with using_registry(MetricsRegistry()):
            frontend = ReplicatedFrontend(_engine(encoder))
            with frontend:
                frontend.process([("nli", _nli(serve_tables))], timeout=60)
                health = frontend.healthz()
        assert health["status"] == "ok"
        assert health["tasks"] == ["nli"]
        assert health["replicas"] == 0
        assert health["queue_depth"] == 0
        assert health["cache"]["misses"] >= 1

    def test_close_resolves_pending_tickets(self, encoder, serve_tables):
        frontend = ReplicatedFrontend(_engine(encoder))
        pending = frontend.submit("nli", _nli(serve_tables))
        frontend.close()              # dispatcher never started
        assert pending.done()
        assert pending.error["code"] == "shutdown"


class TestReplicatedFrontend:
    def _two_task_engine(self, encoder):
        rng = np.random.default_rng(0)
        return InferenceEngine({
            "nli": NliClassifier(encoder, rng),
            "qa": CellSelectionQA(encoder, np.random.default_rng(1)),
        }, ServeConfig())

    def _traffic(self, serve_tables):
        submissions = []
        for i in range(6):
            submissions.append(("nli", _nli(serve_tables, i % 3)))
            submissions.append(
                ("qa", QAExample(serve_tables[i % 3], f"q{i % 2}?",
                                 None, ())))
        return submissions

    @pytest.mark.parametrize("replicas", [1, 2])
    def test_byte_identical_to_single_engine(self, encoder, serve_config,
                                             serve_tokenizer, serve_tables,
                                             replicas):
        from repro.models import TableBert

        submissions = self._traffic(serve_tables)
        baseline = self._two_task_engine(encoder).process(submissions)
        twin = TableBert(serve_config, serve_tokenizer,
                         np.random.default_rng(0))
        frontend = ReplicatedFrontend(
            self._two_task_engine(twin), FrontendConfig(replicas=replicas))
        with frontend:
            results = frontend.process(submissions, timeout=120)
        from repro.serve import json_safe_label
        for reference, result in zip(baseline, results):
            assert "error" not in result
            assert result["label"] == json_safe_label(
                reference.prediction.label)
            assert result["score"] == reference.prediction.score

    def test_worker_death_recovers_by_respawn(self, encoder, serve_tables):
        with using_registry(MetricsRegistry()) as registry:
            frontend = ReplicatedFrontend(
                _engine(encoder), FrontendConfig(replicas=1))
            with frontend:
                warm = frontend.process([("nli", _nli(serve_tables))],
                                        timeout=120)
                assert "error" not in warm[0]
                frontend._pool.handle(0).process.kill()
                frontend._pool.handle(0).process.join(timeout=10)
                results = frontend.process(
                    [("nli", _nli(serve_tables, 1))], timeout=120)
            assert "error" not in results[0]
            assert registry.counter("serve.frontend.respawns").value >= 1

    def test_degraded_pool_falls_back_inline(self, encoder, serve_tables):
        with using_registry(MetricsRegistry()) as registry:
            frontend = ReplicatedFrontend(
                _engine(encoder),
                FrontendConfig(replicas=1, max_respawns=0))
            with frontend:
                frontend.start()
                frontend._pool.handle(0).process.kill()
                frontend._pool.handle(0).process.join(timeout=10)
                results = frontend.process(
                    [("nli", _nli(serve_tables))], timeout=120)
            assert "error" not in results[0]
            assert results[0]["replica"] == -1
            assert registry.counter("serve.frontend.degraded").value == 1
            assert registry.counter("serve.frontend.fallbacks").value >= 1

    def test_affinity_routing_is_stable(self, encoder, serve_tables):
        frontend = ReplicatedFrontend(_engine(encoder))
        a = ServeTicket(0, "nli", object(), "same-table", 0.0, None)
        b = ServeTicket(1, "nli", object(), "same-table", 0.0, None)
        c = ServeTicket(2, "nli", object(), "other-table", 0.0, None)
        live = [0, 1, 2, 3]
        assert frontend._slot_of(a, live) == frontend._slot_of(b, live)
        assert frontend._slot_of(a, live) in live
        assert frontend._slot_of(c, live) in live


class TestCacheConcurrency:
    def test_threaded_hidden_for_keeps_counters_and_bytes(self, encoder,
                                                          serve_tables):
        """Front-end threads hammering one cache: no corruption, exact
        hit/miss accounting, byte-identical hidden states."""
        from repro.serve import EncodingCache

        cache = EncodingCache(max_entries=32)
        features = []
        for table in serve_tables[:4]:
            serialized = encoder.serialize(table, None)
            features.append(encoder.features(serialized, table=table))

        results: dict[int, list] = {}
        errors: list[Exception] = []

        def worker(thread_id: int) -> None:
            try:
                out = []
                for _ in range(5):
                    out.append(cache.hidden_for(encoder, features))
                results[thread_id] = out
            except Exception as error:  # pragma: no cover — failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        total = 4 * 5 * len(features)
        assert cache.misses == len(features)           # one per distinct key
        assert cache.hits == total - len(features)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == total
        assert stats["entries"] == len(features)
        reference = results[0][0]
        for outputs in results.values():
            for batch in outputs:
                for got, expected in zip(batch, reference):
                    assert got.tobytes() == expected.tobytes()

    def test_threaded_store_lookup_respects_budget(self):
        from repro.serve import EncodingCache

        cache = EncodingCache(max_entries=8)
        errors: list[Exception] = []

        def worker(thread_id: int) -> None:
            try:
                for i in range(200):
                    key = ("m", f"{thread_id}-{i % 16}")
                    cache.store(key, np.full(4, thread_id, dtype=np.float64))
                    cache.lookup(key)
                    cache.stats()
            except Exception as error:  # pragma: no cover — failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 8
        assert cache.evictions == cache.stats()["evictions"] > 0
