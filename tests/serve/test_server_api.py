"""The /v1 HTTP surface: envelopes, deprecation headers, run_server."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.corpus import NLIExample
from repro.runtime import InMemorySink, MetricsRegistry, using_registry
from repro.serve import (
    InferenceEngine,
    ServeConfig,
    ServerConfig,
    make_http_server,
    make_server,
    run_server,
    serve_forever,
)
from repro.tasks import NliClassifier


@pytest.fixture
def engine(encoder):
    nli = NliClassifier(encoder, np.random.default_rng(0))
    return InferenceEngine({"nli": nli}, ServeConfig())


def _inline_table(table):
    return {"header": table.header,
            "rows": [[cell.text() for cell in row] for row in table.rows[:3]],
            "title": "demo"}


class _Client:
    """Drives one handle_request per call against a bound server."""

    def __init__(self, server):
        self.server = server
        self.port = server.server_address[1]

    def call(self, path, payload=None):
        worker = threading.Thread(target=self.server.handle_request)
        worker.start()
        data = None if payload is None else json.dumps(payload).encode()
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{self.port}{path}", data=data,
                    timeout=60) as response:
                return response.status, dict(response.headers), \
                    json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), json.loads(error.read())
        finally:
            worker.join()


@pytest.fixture
def client(engine):
    server = make_http_server(engine, ServerConfig(port=0))
    yield _Client(server)
    server.server_close()


class TestV1Surface:
    def test_healthz(self, client):
        status, headers, health = client.call("/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers
        assert health["status"] == "ok"
        assert health["tasks"] == ["nli"]
        assert health["replicas"] == 0

    def test_predict_single(self, client, serve_tables):
        status, headers, body = client.call(
            "/v1/predict", {"task": "nli",
                            "table": _inline_table(serve_tables[0]),
                            "statement": "hello"})
        assert status == 200
        assert "Deprecation" not in headers
        assert body["label"] in (0, 1)
        assert body["task"] == "nli"
        assert "latency_seconds" in body and "replica" in body

    def test_predict_batch_answers_per_item(self, client, serve_tables):
        table = _inline_table(serve_tables[0])
        status, _, body = client.call("/v1/predict", [
            {"task": "nli", "table": table, "statement": "s"},
            {"task": "nli", "table": table, "statement": "s"},
        ])
        assert status == 200
        assert [item["batch_size"] for item in body] == [2, 2]
        assert body[0]["label"] == body[1]["label"]

    def test_metrics_has_serve_instruments(self, client, serve_tables):
        client.call("/v1/predict",
                    {"task": "nli", "table": _inline_table(serve_tables[0]),
                     "statement": "s"})
        status, _, metrics = client.call("/v1/metrics")
        assert status == 200
        names = {m.get("name") for m in metrics}
        assert "serve.requests" in names
        assert "serve.frontend.requests" in names
        timers = {m["name"]: m for m in metrics
                  if m.get("metric") == "timer"}
        latency = timers["serve.frontend.latency_seconds"]
        assert "p99_seconds" in latency and "p50_seconds" in latency


class TestErrorEnvelope:
    def test_bad_request(self, client):
        status, _, body = client.call("/v1/predict", {"task": "nli"})
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert body["error"]["retryable"] is False
        assert "message" in body["error"]

    def test_unknown_task(self, client):
        status, _, body = client.call("/v1/predict", {"task": "nope"})
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_not_found(self, client):
        status, _, body = client.call("/v1/nothing")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert body["error"]["retryable"] is False

    def test_overload_maps_to_retryable_503(self, engine, serve_tables,
                                            monkeypatch):
        server = make_http_server(engine, ServerConfig(port=0))
        try:
            original = server.frontend.submit_many

            def overloaded(submissions):
                tickets = original(submissions)
                for ticket in tickets:
                    ticket.fail("overloaded", "queue full", True)
                return tickets

            monkeypatch.setattr(server.frontend, "submit_many", overloaded)
            status, _, body = _Client(server).call(
                "/v1/predict",
                {"task": "nli", "table": _inline_table(serve_tables[0]),
                 "statement": "s"})
            assert status == 503
            assert body["error"]["code"] == "overloaded"
            assert body["error"]["retryable"] is True
        finally:
            server.server_close()

    def test_deadline_maps_to_504(self, engine, serve_tables, monkeypatch):
        server = make_http_server(engine, ServerConfig(port=0))
        try:
            original = server.frontend.submit_many

            def expiring(submissions):
                tickets = original(submissions)
                for ticket in tickets:
                    ticket.fail("deadline_exceeded", "too slow", True)
                return tickets

            monkeypatch.setattr(server.frontend, "submit_many", expiring)
            status, _, body = _Client(server).call(
                "/v1/predict",
                {"task": "nli", "table": _inline_table(serve_tables[0]),
                 "statement": "s"})
            assert status == 504
            assert body["error"]["retryable"] is True
        finally:
            server.server_close()


class TestLegacyPaths:
    @pytest.mark.parametrize("path,payload", [
        ("/healthz", None),
        ("/metrics", None),
    ])
    def test_legacy_gets_answer_with_deprecation_header(self, client, path,
                                                        payload):
        status, headers, _ = client.call(path, payload)
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert "successor-version" in headers.get("Link", "")

    def test_legacy_predict_deprecated_but_working(self, client,
                                                   serve_tables):
        status, headers, body = client.call(
            "/predict", {"task": "nli",
                         "table": _inline_table(serve_tables[0]),
                         "statement": "hello"})
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert body["label"] in (0, 1)


class TestVerboseLogging:
    def test_request_lines_reach_event_stream(self, engine, serve_tables):
        with using_registry(MetricsRegistry()) as registry:
            sink = registry.add_sink(InMemorySink())
            server = make_http_server(
                engine, ServerConfig(port=0, verbose=True))
            try:
                _Client(server).call("/v1/healthz")
            finally:
                server.server_close()
            assert any("GET /v1/healthz" in event.get("line", "")
                       for event in sink.of_kind("http"))

    def test_quiet_by_default(self, engine):
        with using_registry(MetricsRegistry()) as registry:
            sink = registry.add_sink(InMemorySink())
            server = make_http_server(engine, ServerConfig(port=0))
            try:
                _Client(server).call("/v1/healthz")
            finally:
                server.server_close()
            assert sink.of_kind("http") == []


class TestRunServerAndShims:
    def test_run_server_bounded_loop(self, engine, serve_tables):
        import socket
        import time

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        config = ServerConfig(port=port, max_requests=1)
        thread = threading.Thread(target=run_server, args=(engine, config))
        thread.start()
        health = None
        for _ in range(200):
            try:
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/v1/healthz",
                        timeout=5) as response:
                    health = json.loads(response.read())
                break
            except (urllib.error.URLError, ConnectionError, OSError):
                time.sleep(0.05)
        thread.join(timeout=60)
        assert health is not None and health["status"] == "ok"
        assert not thread.is_alive()      # max_requests bounded the loop

    def test_server_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(deadline_ms=-1)
        with pytest.raises(ValueError):
            ServerConfig(replicas=-1)
        with pytest.raises(ValueError):
            ServerConfig(max_queue=0)

    def test_make_server_shim_warns_and_works(self, engine):
        with pytest.warns(DeprecationWarning, match="make_server"):
            server = make_server(engine, "127.0.0.1", 0)
        try:
            status, _, health = _Client(server).call("/healthz")
            assert status == 200 and health["status"] == "ok"
        finally:
            server.server_close()

    def test_serve_forever_shim_warns(self, engine):
        with pytest.warns(DeprecationWarning, match="serve_forever"):
            serve_forever(engine, "127.0.0.1", 0, max_requests=0)

    def test_server_close_shuts_frontend(self, engine):
        server = make_http_server(engine, ServerConfig(port=0))
        frontend = server.frontend
        server.server_close()
        assert frontend._dispatcher is None
