"""Tests for the ORDER BY / GROUP BY dialect extensions."""

import numpy as np
import pytest

from repro.sql import (
    Aggregate,
    ExecutionError,
    SqlSyntaxError,
    execute,
    generate_query,
    parse_query,
)
from repro.tables import Table


@pytest.fixture
def scores():
    return Table(
        ["Name", "Team", "Score"],
        [
            ["ann", "red", 30.0],
            ["bob", "blue", 10.0],
            ["cat", "red", 20.0],
            ["dan", "blue", 40.0],
            ["eve", None, 5.0],
        ],
    )


def run(sql, table):
    return execute(parse_query(sql), table)


class TestOrderByParsing:
    def test_ascending_default(self):
        q = parse_query('SELECT "Name" FROM t ORDER BY "Score"')
        assert q.order_by == "Score"
        assert not q.descending

    def test_descending(self):
        q = parse_query('SELECT "Name" FROM t ORDER BY "Score" DESC')
        assert q.descending

    def test_explicit_asc(self):
        q = parse_query('SELECT "Name" FROM t ORDER BY "Score" ASC')
        assert not q.descending

    def test_render_roundtrip(self):
        for sql in ('SELECT "Name" FROM t ORDER BY "Score" DESC LIMIT 2',
                    'SELECT COUNT("Name") FROM t GROUP BY "Team"'):
            q = parse_query(sql)
            assert parse_query(q.render()) == q


class TestGroupByParsing:
    def test_group_by(self):
        q = parse_query('SELECT SUM("Score") FROM t GROUP BY "Team"')
        assert q.group_by == "Team"
        assert q.aggregate is Aggregate.SUM

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query('SELECT "Name" FROM t GROUP BY "Team"')

    def test_group_and_order_combination_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query('SELECT SUM("Score") FROM t GROUP BY "Team" '
                        'ORDER BY "Score"')


class TestOrderByExecution:
    def test_ascending_numeric(self, scores):
        result = run('SELECT "Name" FROM t ORDER BY "Score"', scores)
        assert result == ["eve", "bob", "cat", "ann", "dan"]

    def test_descending(self, scores):
        result = run('SELECT "Name" FROM t ORDER BY "Score" DESC', scores)
        assert result[0] == "dan"

    def test_order_with_where_and_limit(self, scores):
        result = run('SELECT "Name" FROM t WHERE "Team" = \'red\' '
                     'ORDER BY "Score" DESC LIMIT 1', scores)
        assert result == ["ann"]

    def test_order_by_text_column(self, scores):
        result = run('SELECT "Score" FROM t ORDER BY "Name"', scores)
        assert result == [30.0, 10.0, 20.0, 40.0, 5.0]

    def test_unknown_order_column(self, scores):
        with pytest.raises(ExecutionError):
            run('SELECT "Name" FROM t ORDER BY "Ghost"', scores)

    def test_order_ignored_for_aggregates(self, scores):
        # Aggregates are order-insensitive; ORDER BY must not break them.
        query = parse_query('SELECT "Score" FROM t ORDER BY "Name"')
        from repro.sql import SelectQuery
        agg = SelectQuery("Score", Aggregate.MAX, (), None, None,
                          query.order_by, query.descending)
        assert execute(agg, scores) == [40.0]


class TestGroupByExecution:
    def test_count_per_group_ordered_by_key(self, scores):
        result = run('SELECT COUNT("Name") FROM t GROUP BY "Team"', scores)
        # Groups sorted by key: blue, red (eve's empty team dropped).
        assert result == [2.0, 2.0]

    def test_sum_per_group(self, scores):
        result = run('SELECT SUM("Score") FROM t GROUP BY "Team"', scores)
        assert result == [50.0, 50.0]

    def test_avg_per_group(self, scores):
        result = run('SELECT AVG("Score") FROM t GROUP BY "Team"', scores)
        assert result == [25.0, 25.0]

    def test_group_with_where(self, scores):
        result = run('SELECT MAX("Score") FROM t WHERE "Score" < 35 '
                     'GROUP BY "Team"', scores)
        assert result == [10.0, 30.0]

    def test_numeric_group_keys_sorted_numerically(self):
        table = Table(["k", "v"], [[10.0, 1.0], [2.0, 2.0], [10.0, 3.0]])
        result = run('SELECT COUNT("v") FROM t GROUP BY "k"', table)
        assert result == [1.0, 2.0]  # key 2 before key 10

    def test_limit_applies_to_groups(self, scores):
        result = run('SELECT COUNT("Name") FROM t GROUP BY "Team" LIMIT 1',
                     scores)
        assert result == [2.0]

    def test_unknown_group_column(self, scores):
        with pytest.raises(ExecutionError):
            run('SELECT COUNT("Name") FROM t GROUP BY "Ghost"', scores)


class TestGeneratorClauses:
    def test_clauses_generated_and_executable(self, scores):
        rng = np.random.default_rng(0)
        seen_order = seen_group = False
        for _ in range(80):
            query = generate_query(scores, rng)
            execute(query, scores)  # must never raise
            seen_order |= query.order_by is not None
            seen_group |= query.group_by is not None
        assert seen_order and seen_group

    def test_clauses_disabled(self, scores):
        rng = np.random.default_rng(1)
        for _ in range(40):
            query = generate_query(scores, rng, allow_clauses=False)
            assert query.order_by is None and query.group_by is None

    def test_render_parse_with_clauses(self, scores):
        rng = np.random.default_rng(2)
        for _ in range(40):
            query = generate_query(scores, rng)
            assert parse_query(query.render()) == query
