"""Tests for the symbolic SQL executor."""

import pytest

from repro.sql import ExecutionError, denotation_text, execute, parse_query
from repro.tables import Table


@pytest.fixture
def countries():
    return Table(
        ["Country", "Capital", "Population"],
        [
            ["Australia", "Canberra", 25.69],
            ["France", "Paris", 67.75],
            ["Japan", "Tokyo", 125.7],
            ["Monaco", None, 0.039],
        ],
    )


def run(sql, table):
    return execute(parse_query(sql), table)


class TestSelection:
    def test_select_all(self, countries):
        assert run("SELECT Country FROM t", countries) == \
            ["Australia", "France", "Japan", "Monaco"]

    def test_where_equality_case_insensitive(self, countries):
        assert run("SELECT Capital FROM t WHERE Country = 'france'", countries) == ["Paris"]

    def test_where_numeric_threshold(self, countries):
        assert run("SELECT Country FROM t WHERE Population > 50", countries) == \
            ["France", "Japan"]

    def test_conjunction(self, countries):
        result = run(
            "SELECT Country FROM t WHERE Population > 20 AND Population < 100",
            countries,
        )
        assert result == ["Australia", "France"]

    def test_inequality(self, countries):
        result = run("SELECT Country FROM t WHERE Country != 'Japan'", countries)
        assert "Japan" not in result and len(result) == 3

    def test_empty_cells_skipped_in_result(self, countries):
        assert run("SELECT Capital FROM t WHERE Country = 'Monaco'", countries) == []

    def test_empty_cells_never_match_conditions(self, countries):
        assert run("SELECT Country FROM t WHERE Capital = ''", countries) == []

    def test_limit(self, countries):
        assert run("SELECT Country FROM t LIMIT 2", countries) == ["Australia", "France"]

    def test_no_match(self, countries):
        assert run("SELECT Country FROM t WHERE Population > 1000", countries) == []


class TestAggregates:
    def test_count(self, countries):
        assert run("SELECT COUNT(Country) FROM t", countries) == [4.0]

    def test_count_respects_where(self, countries):
        assert run("SELECT COUNT(Country) FROM t WHERE Population > 50", countries) == [2.0]

    def test_count_skips_empty_cells(self, countries):
        assert run("SELECT COUNT(Capital) FROM t", countries) == [3.0]

    def test_sum(self, countries):
        assert run("SELECT SUM(Population) FROM t WHERE Population > 50", countries) == \
            [pytest.approx(193.45)]

    def test_avg(self, countries):
        assert run("SELECT AVG(Population) FROM t WHERE Country = 'Japan'", countries) == \
            [125.7]

    def test_min_max(self, countries):
        assert run("SELECT MIN(Population) FROM t", countries) == [0.039]
        assert run("SELECT MAX(Population) FROM t", countries) == [125.7]

    def test_numeric_aggregate_over_text_returns_empty(self, countries):
        assert run("SELECT SUM(Capital) FROM t", countries) == []


class TestTypeHandling:
    def test_thousands_separator_comparison(self):
        table = Table(["n"], [["1,234"], ["5"]])
        assert run("SELECT n FROM t WHERE n > 1000", table) == [1234.0]

    def test_text_number_equality_mismatch(self, countries):
        # Comparing a text column with a number matches nothing.
        assert run("SELECT Country FROM t WHERE Capital = 5", countries) == []

    def test_ordered_comparison_on_text_is_false(self, countries):
        assert run("SELECT Country FROM t WHERE Capital > 'Paris'", countries) == []

    def test_unknown_column_raises(self, countries):
        with pytest.raises(ExecutionError):
            run("SELECT Area FROM t", countries)


class TestDenotationText:
    def test_integers_rendered_bare(self):
        assert denotation_text([2.0]) == "2"

    def test_floats_trimmed(self):
        assert denotation_text([25.69]) == "25.69"

    def test_list_joined(self):
        assert denotation_text(["Paris", 3.0]) == "Paris, 3"

    def test_empty(self):
        assert denotation_text([]) == ""
