"""Tests for the random query generator, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import (
    Aggregate,
    execute,
    generate_labeled_queries,
    generate_query,
    parse_query,
)
from repro.tables import Table


@pytest.fixture
def table():
    return Table(
        ["Name", "Score", "Team"],
        [
            ["ann", 10.0, "red"],
            ["bob", 20.0, "blue"],
            ["cat", 30.0, "red"],
            ["dan", 40.0, "blue"],
        ],
    )


class TestGenerateQuery:
    def test_select_column_exists(self, table):
        rng = np.random.default_rng(0)
        for _ in range(20):
            q = generate_query(table, rng)
            assert q.select_column in table.header

    def test_conditions_reference_existing_columns(self, table):
        rng = np.random.default_rng(1)
        for _ in range(20):
            q = generate_query(table, rng)
            for cond in q.conditions:
                assert cond.column in table.header

    def test_text_columns_get_no_numeric_aggregates(self, table):
        rng = np.random.default_rng(2)
        for _ in range(50):
            q = generate_query(table, rng)
            if q.select_column in ("Name", "Team"):
                assert q.aggregate in (Aggregate.NONE, Aggregate.COUNT)

    def test_deterministic_given_seed(self, table):
        a = generate_query(table, np.random.default_rng(42))
        b = generate_query(table, np.random.default_rng(42))
        assert a == b

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            generate_query(Table([], []), np.random.default_rng(0))

    def test_rendered_query_parses_back(self, table):
        rng = np.random.default_rng(3)
        for _ in range(30):
            q = generate_query(table, rng)
            assert parse_query(q.render()) == q


class TestLabeledQueries:
    def test_denotations_match_executor(self, table):
        rng = np.random.default_rng(4)
        for query, denotation in generate_labeled_queries(table, 15, rng):
            assert execute(query, table) == denotation

    def test_nonempty_by_default(self, table):
        rng = np.random.default_rng(5)
        for _, denotation in generate_labeled_queries(table, 15, rng):
            assert denotation

    def test_count_respected(self, table):
        rng = np.random.default_rng(6)
        assert len(generate_labeled_queries(table, 7, rng)) == 7

    def test_attempt_cap_prevents_hang(self):
        # A table of only empty cells can never yield non-empty denotations.
        table = Table(["a", "b"], [[None, None], [None, None]])
        rng = np.random.default_rng(7)
        pairs = generate_labeled_queries(table, 5, rng)
        assert pairs == [] or all(d for _, d in pairs)


@st.composite
def small_tables(draw):
    n_rows = draw(st.integers(1, 5))
    names = ["col_a", "col_b"]
    rows = []
    for _ in range(n_rows):
        text = draw(st.sampled_from(["x", "y", "z"]))
        number = draw(st.integers(0, 100))
        rows.append([text, float(number)])
    return Table(names, rows)


class TestProperties:
    @given(small_tables(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_generated_queries_always_execute(self, table, seed):
        rng = np.random.default_rng(seed)
        query = generate_query(table, rng)
        execute(query, table)  # must not raise

    @given(small_tables(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_render_parse_execute_consistent(self, table, seed):
        rng = np.random.default_rng(seed)
        query = generate_query(table, rng)
        reparsed = parse_query(query.render())
        assert execute(query, table) == execute(reparsed, table)
