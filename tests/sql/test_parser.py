"""Tests for the SQL parser."""

import pytest

from repro.sql import Aggregate, Comparator, SqlSyntaxError, parse_query


class TestBasicParsing:
    def test_plain_select(self):
        q = parse_query("SELECT Capital FROM t")
        assert q.select_column == "Capital"
        assert q.aggregate is Aggregate.NONE
        assert q.conditions == ()

    def test_quoted_identifier(self):
        q = parse_query('SELECT "hours-per-week" FROM t')
        assert q.select_column == "hours-per-week"

    def test_aggregate(self):
        q = parse_query("SELECT SUM(Population) FROM t")
        assert q.aggregate is Aggregate.SUM
        assert q.select_column == "Population"

    def test_all_aggregates(self):
        for name, agg in [("COUNT", Aggregate.COUNT), ("AVG", Aggregate.AVG),
                          ("MIN", Aggregate.MIN), ("MAX", Aggregate.MAX)]:
            assert parse_query(f"SELECT {name}(x) FROM t").aggregate is agg

    def test_case_insensitive_keywords(self):
        q = parse_query("select count(x) from t where y = 1")
        assert q.aggregate is Aggregate.COUNT
        assert len(q.conditions) == 1

    def test_column_named_like_aggregate(self):
        # 'count' without parentheses is a column name.
        q = parse_query("SELECT count FROM t")
        assert q.aggregate is Aggregate.NONE
        assert q.select_column == "count"


class TestWhere:
    def test_single_condition_string(self):
        q = parse_query("SELECT a FROM t WHERE b = 'Paris'")
        cond = q.conditions[0]
        assert cond.column == "b"
        assert cond.comparator is Comparator.EQ
        assert cond.value == "Paris"

    def test_escaped_quote_in_string(self):
        q = parse_query("SELECT a FROM t WHERE b = 'O''Brien'")
        assert q.conditions[0].value == "O'Brien"

    def test_numeric_condition(self):
        q = parse_query("SELECT a FROM t WHERE n > 25.5")
        assert q.conditions[0].value == 25.5

    def test_negative_number(self):
        q = parse_query("SELECT a FROM t WHERE n >= -3")
        assert q.conditions[0].value == -3.0

    def test_multiple_conditions(self):
        q = parse_query("SELECT a FROM t WHERE x = 1 AND y != 'z' AND w <= 2")
        assert len(q.conditions) == 3
        assert q.conditions[1].comparator is Comparator.NE

    def test_all_comparators(self):
        for op, comp in [("=", Comparator.EQ), ("!=", Comparator.NE),
                         ("<", Comparator.LT), (">", Comparator.GT),
                         ("<=", Comparator.LE), (">=", Comparator.GE)]:
            q = parse_query(f"SELECT a FROM t WHERE x {op} 1")
            assert q.conditions[0].comparator is comp


class TestLimit:
    def test_limit(self):
        assert parse_query("SELECT a FROM t LIMIT 3").limit == 3

    def test_where_and_limit(self):
        q = parse_query("SELECT a FROM t WHERE x = 1 LIMIT 2")
        assert q.limit == 2 and len(q.conditions) == 1


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "SELECT FROM t",
        "SELECT a",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t WHERE x ~ 1",
        "SELECT a FROM t LIMIT many",
        "SELECT a FROM t garbage",
        "UPDATE t SET a = 1",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_query(bad)


class TestRoundtrip:
    @pytest.mark.parametrize("sql", [
        'SELECT "Capital" FROM t',
        'SELECT SUM("Population") FROM t',
        'SELECT "a" FROM t WHERE "b" = \'Paris\' AND "c" > 3',
        'SELECT COUNT("a") FROM t LIMIT 1',
    ])
    def test_render_parse_fixpoint(self, sql):
        query = parse_query(sql)
        assert parse_query(query.render()) == query
