"""Tests for CSV loading/saving."""

import pytest

from repro.tables import Table, dumps_table, load_table, loads_table, save_table


CSV_TEXT = """Country,Capital,Population
Australia,Canberra,25.69
France,Paris,67.75
"""


class TestLoadsTable:
    def test_basic_parse(self):
        table = loads_table(CSV_TEXT, table_id="t1")
        assert table.shape == (2, 3)
        assert table.header == ["Country", "Capital", "Population"]
        assert table.cell(0, 2).value == 25.69
        assert table.table_id == "t1"

    def test_numbers_converted(self):
        table = loads_table("a,b\n1,hello\n2.5,world\n")
        assert table.cell(0, 0).value == 1.0
        assert table.cell(1, 0).value == 2.5

    def test_thousands_separators(self):
        table = loads_table('a\n"1,234"\n')
        assert table.cell(0, 0).value == 1234.0

    def test_leading_zero_ids_stay_text(self):
        table = loads_table("code\n007\n")
        assert table.cell(0, 0).value == "007"

    def test_plain_zero_is_numeric(self):
        table = loads_table("n\n0\n")
        assert table.cell(0, 0).value == 0.0

    def test_empty_fields_become_none(self):
        table = loads_table("a,b\n,x\n")
        assert table.cell(0, 0).value is None

    def test_short_rows_padded(self):
        table = loads_table("a,b,c\n1,2\n")
        assert table.cell(0, 2).value is None

    def test_long_rows_truncated(self):
        table = loads_table("a,b\n1,2,3\n")
        assert table.shape == (1, 2)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            loads_table("")

    def test_title_lands_in_context(self):
        table = loads_table(CSV_TEXT, title="Population by Country")
        assert table.context.title == "Population by Country"

    def test_tsv_delimiter(self):
        table = loads_table("a\tb\n1\t2\n", delimiter="\t")
        assert table.shape == (1, 2)


class TestRoundtrip:
    def test_dumps_then_loads(self):
        original = loads_table(CSV_TEXT)
        again = loads_table(dumps_table(original))
        assert again.header == original.header
        assert again.cell(1, 1).value == "Paris"

    def test_file_roundtrip(self, tmp_path):
        table = loads_table(CSV_TEXT)
        path = save_table(table, tmp_path / "out" / "countries.csv")
        loaded = load_table(path)
        assert loaded.header == table.header
        assert loaded.table_id == "countries"

    def test_quoting_preserved(self):
        table = Table(["a"], [["has, comma"]])
        assert loads_table(dumps_table(table)).cell(0, 0).value == "has, comma"
