"""Tests for table filtering / truncation / content snapshot."""

import pytest

from repro.tables import (
    Table,
    drop_empty_columns,
    drop_empty_rows,
    passes_quality_filter,
    select_relevant_rows,
    truncate_columns,
    truncate_rows,
)


@pytest.fixture
def films():
    return Table(
        ["Year", "Recipient", "Film"],
        [
            ["1967", "Satyajit Ray", "Chiriyakhana"],
            ["1968", "Mrinal Sen", "Bhuvan Shome"],
            ["1969", "Satyajit Ray", "Goopy Gyne"],
            ["1970", "Ritwik Ghatak", "Titash"],
        ],
    )


class TestTruncation:
    def test_truncate_rows(self, films):
        assert truncate_rows(films, 2).num_rows == 2
        assert truncate_rows(films, 2).cell(0, 0).value == "1967"

    def test_truncate_rows_noop(self, films):
        assert truncate_rows(films, 10) is films

    def test_truncate_rows_validates(self, films):
        with pytest.raises(ValueError):
            truncate_rows(films, -1)

    def test_truncate_columns(self, films):
        assert truncate_columns(films, 1).header == ["Year"]

    def test_truncate_columns_noop(self, films):
        assert truncate_columns(films, 3) is films


class TestDropEmpty:
    def test_drop_empty_rows(self):
        table = Table(["a", "b"], [["x", "y"], [None, ""], ["z", None]])
        cleaned = drop_empty_rows(table)
        assert cleaned.num_rows == 2

    def test_drop_empty_columns(self):
        table = Table(["a", "", "c"], [["x", None, "y"], ["z", "", "w"]])
        cleaned = drop_empty_columns(table)
        assert cleaned.header == ["a", "c"]

    def test_named_empty_column_kept(self):
        table = Table(["a", "note"], [["x", None]])
        assert drop_empty_columns(table).header == ["a", "note"]


class TestContentSnapshot:
    def test_selects_overlapping_rows(self, films):
        snapshot = select_relevant_rows(films, "films by Satyajit Ray", max_rows=2)
        recipients = [snapshot.cell(r, 1).value for r in range(2)]
        assert recipients == ["Satyajit Ray", "Satyajit Ray"]

    def test_order_preserved(self, films):
        snapshot = select_relevant_rows(films, "Satyajit Ray", max_rows=2)
        years = [snapshot.cell(r, 0).value for r in range(2)]
        assert years == sorted(years)

    def test_no_truncation_needed(self, films):
        assert select_relevant_rows(films, "anything", max_rows=10) is films

    def test_validates_max_rows(self, films):
        with pytest.raises(ValueError):
            select_relevant_rows(films, "x", max_rows=0)

    def test_tie_break_keeps_leading_rows(self, films):
        snapshot = select_relevant_rows(films, "unrelated query", max_rows=2)
        assert [snapshot.cell(r, 0).value for r in range(2)] == ["1967", "1968"]


class TestQualityFilter:
    def test_accepts_dense_table(self, films):
        assert passes_quality_filter(films)

    def test_rejects_tiny_table(self):
        assert not passes_quality_filter(Table(["a"], [["x"], ["y"]]))
        assert not passes_quality_filter(Table(["a", "b"], [["x", "y"]]))

    def test_rejects_sparse_table(self):
        table = Table(["a", "b"], [["x", None], [None, None], [None, "y"]])
        assert not passes_quality_filter(table)

    def test_threshold_configurable(self):
        table = Table(["a", "b"], [["x", None], [None, "y"]])
        assert passes_quality_filter(table, max_empty_fraction=0.6)
