"""Tests for orientation detection and transposition."""

import numpy as np
import pytest

from repro.corpus import KnowledgeBase, generate_infobox, generate_infobox_corpus
from repro.tables import (
    Table,
    detect_orientation,
    normalize_orientation,
    transpose_table,
)


@pytest.fixture(scope="module")
def kb():
    return KnowledgeBase(seed=0)


def relational_table():
    return Table(
        ["name", "year", "score"],
        [["ann", 2001.0, 3.2], ["bob", 2004.0, 4.5], ["cat", 2010.0, 1.1]],
    )


def vertical_card():
    return Table(
        ["", ""],
        [["population", 67.75], ["capital", "Paris"], ["founded", 1958.0],
         ["currency", "euro"]],
        table_id="card",
    )


class TestDetectOrientation:
    def test_relational_is_horizontal(self):
        assert detect_orientation(relational_table()) == "horizontal"

    def test_entity_card_is_vertical(self):
        assert detect_orientation(vertical_card()) == "vertical"

    def test_descriptive_header_short_circuits(self):
        # Even a card-shaped table with named header counts as horizontal.
        table = Table(["attribute", "value"],
                      [["population", 67.75], ["capital", "Paris"]])
        assert detect_orientation(table) == "horizontal"

    def test_tiny_tables_default_horizontal(self):
        assert detect_orientation(Table([""], [["x"]])) == "horizontal"

    def test_generated_infoboxes_detected(self, kb):
        rng = np.random.default_rng(0)
        detected = [detect_orientation(generate_infobox(kb, rng))
                    for _ in range(10)]
        assert detected.count("vertical") >= 7


class TestTranspose:
    def test_first_column_becomes_header(self):
        flipped = transpose_table(vertical_card())
        assert flipped.header == ["population", "capital", "founded",
                                  "currency"]
        assert flipped.num_rows == 1
        assert flipped.cell(0, 1).value == "Paris"

    def test_entity_annotations_preserved(self, kb):
        rng = np.random.default_rng(1)
        card = generate_infobox(kb, rng, domain="countries")
        flipped = transpose_table(card)
        original_entities = {cell.entity_id
                             for _, _, cell in card.iter_cells()
                             if cell.entity_id is not None}
        flipped_entities = {cell.entity_id
                            for _, _, cell in flipped.iter_cells()
                            if cell.entity_id is not None}
        assert original_entities == flipped_entities

    def test_without_header_promotion(self):
        flipped = transpose_table(vertical_card(),
                                  header_from_first_column=False)
        assert flipped.header == ["", "", "", ""]
        assert flipped.num_rows == 2

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            transpose_table(Table([], []))


class TestNormalize:
    def test_horizontal_unchanged(self):
        table = relational_table()
        assert normalize_orientation(table) is table

    def test_vertical_transposed(self):
        normalized = normalize_orientation(vertical_card())
        assert normalized.num_rows == 1
        assert "capital" in normalized.header

    def test_normalized_is_horizontal(self, kb):
        rng = np.random.default_rng(2)
        for _ in range(5):
            card = generate_infobox(kb, rng)
            normalized = normalize_orientation(card)
            assert detect_orientation(normalized) == "horizontal"


class TestInfoboxCorpus:
    def test_deterministic(self, kb):
        a = generate_infobox_corpus(kb, 5, seed=3)
        b = generate_infobox_corpus(kb, 5, seed=3)
        assert all(x == y for x, y in zip(a, b))

    def test_title_is_subject(self, kb):
        rng = np.random.default_rng(0)
        card = generate_infobox(kb, rng, domain="films")
        film_names = {r["film"].name for r in kb.domain_records("films")}
        assert card.context.title in film_names

    def test_two_columns_headerless(self, kb):
        for card in generate_infobox_corpus(kb, 5, seed=1):
            assert card.num_columns == 2
            assert card.header == ["", ""]
