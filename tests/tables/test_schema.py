"""Tests for column type inference."""

from repro.tables import Cell, ColumnType, Table, infer_column_type, infer_schema


def cells(*values):
    return [Cell(v) for v in values]


class TestInferColumnType:
    def test_text_column(self):
        assert infer_column_type(cells("Paris", "Tokyo", "Rome")) == ColumnType.TEXT

    def test_number_column(self):
        assert infer_column_type(cells(1, 2.5, "3,000")) == ColumnType.NUMBER

    def test_date_column(self):
        assert infer_column_type(cells("2020-01-01", "1999-12-31")) == ColumnType.DATE

    def test_year_column_is_date(self):
        assert infer_column_type(cells("1967", "1968", "1969")) == ColumnType.DATE

    def test_us_date_format(self):
        assert infer_column_type(cells("1/2/2020", "12/31/99")) == ColumnType.DATE

    def test_long_date_format(self):
        assert infer_column_type(cells("January 5, 2020", "March 10, 2021")) == ColumnType.DATE

    def test_boolean_column(self):
        assert infer_column_type(cells("yes", "no", "yes")) == ColumnType.BOOLEAN

    def test_empty_column(self):
        assert infer_column_type(cells(None, "", None)) == ColumnType.EMPTY

    def test_mixed_column(self):
        assert infer_column_type(cells("Paris", 1, "yes", "2020-01-01")) == ColumnType.MIXED

    def test_dominance_threshold(self):
        # 3 of 4 are text → 0.75 ≥ 0.7 → TEXT wins despite one number.
        assert infer_column_type(cells("a", "b", "c", 1)) == ColumnType.TEXT

    def test_number_date_blend_is_number(self):
        assert infer_column_type(cells("1967", "25.5", "1968", "3.14")) == ColumnType.NUMBER

    def test_empties_ignored_for_dominance(self):
        assert infer_column_type(cells(None, "Paris", None, "Rome")) == ColumnType.TEXT


class TestInferSchema:
    def test_per_column(self):
        table = Table(
            ["name", "score", "date"],
            [["ann", 1.0, "2020-01-01"], ["bob", 2.0, "2021-06-05"]],
        )
        assert infer_schema(table) == [ColumnType.TEXT, ColumnType.NUMBER, ColumnType.DATE]

    def test_empty_table(self):
        table = Table(["a", "b"], [])
        assert infer_schema(table) == [ColumnType.EMPTY, ColumnType.EMPTY]
