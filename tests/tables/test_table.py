"""Tests for the Table data structure."""

import pytest

from repro.tables import Cell, Table, TableContext


@pytest.fixture
def countries():
    return Table(
        header=["Country", "Capital", "Population"],
        rows=[
            ["Australia", "Canberra", 25.69],
            ["France", "Paris", 67.75],
            ["Japan", "Tokyo", 125.7],
        ],
        context=TableContext(title="Population in Million by Country"),
        table_id="countries",
    )


class TestCell:
    def test_empty_detection(self):
        assert Cell(None).is_empty
        assert Cell("  ").is_empty
        assert not Cell(0).is_empty
        assert not Cell("x").is_empty

    def test_numeric_detection(self):
        assert Cell(3.5).is_numeric
        assert Cell("25.69").is_numeric
        assert Cell("1,234").is_numeric
        assert not Cell("Paris").is_numeric
        assert not Cell(None).is_numeric
        assert not Cell(True).is_numeric

    def test_text_rendering(self):
        assert Cell(None).text() == ""
        assert Cell(25.0).text() == "25"
        assert Cell(25.69).text() == "25.69"
        assert Cell("Paris").text() == "Paris"

    def test_entity_annotation(self):
        assert Cell("France", entity_id=42).entity_id == 42
        assert Cell("France").entity_id is None


class TestTableContext:
    def test_text_joins_nonempty(self):
        ctx = TableContext(title="T", caption="C")
        assert ctx.text() == "T C"

    def test_is_empty(self):
        assert TableContext().is_empty
        assert not TableContext(caption="x").is_empty


class TestTableGeometry:
    def test_shape(self, countries):
        assert countries.shape == (3, 3)
        assert countries.num_rows == 3
        assert countries.num_columns == 3

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            Table(["a", "b"], [["only-one"]])

    def test_cell_access(self, countries):
        assert countries.cell(1, 1).value == "Paris"

    def test_column_values(self, countries):
        capitals = [c.value for c in countries.column_values(1)]
        assert capitals == ["Canberra", "Paris", "Tokyo"]

    def test_column_index(self, countries):
        assert countries.column_index("Capital") == 1
        with pytest.raises(KeyError):
            countries.column_index("Area")

    def test_iter_cells_row_major(self, countries):
        coords = [(r, c) for r, c, _ in countries.iter_cells()]
        assert coords[:4] == [(0, 0), (0, 1), (0, 2), (1, 0)]
        assert len(coords) == 9


class TestDerivedViews:
    def test_subtable_rows(self, countries):
        sub = countries.subtable(row_indices=[2, 0])
        assert sub.num_rows == 2
        assert sub.cell(0, 0).value == "Japan"
        assert sub.context == countries.context

    def test_subtable_columns(self, countries):
        sub = countries.subtable(column_indices=[2])
        assert sub.header == ["Population"]
        assert sub.cell(0, 0).value == 25.69

    def test_permutation_validated(self, countries):
        with pytest.raises(ValueError):
            countries.with_rows_permuted([0, 0, 1])

    def test_permutation_applied(self, countries):
        permuted = countries.with_rows_permuted([2, 1, 0])
        assert permuted.cell(0, 0).value == "Japan"

    def test_without_header(self, countries):
        bare = countries.without_header()
        assert bare.header == ["", "", ""]
        assert bare.cell(0, 0).value == "Australia"

    def test_replace_cell_is_copy(self, countries):
        replaced = countries.replace_cell(0, 1, "Sydney")
        assert replaced.cell(0, 1).value == "Sydney"
        assert countries.cell(0, 1).value == "Canberra"


class TestStatistics:
    def test_empty_fraction(self):
        table = Table(["a", "b"], [[None, "x"], ["", "y"]])
        assert table.empty_fraction() == 0.5

    def test_numeric_fraction(self, countries):
        assert countries.numeric_fraction() == pytest.approx(3 / 9)

    def test_numeric_fraction_empty_table(self):
        assert Table(["a"], []).numeric_fraction() == 0.0

    def test_descriptive_header(self, countries):
        assert countries.has_descriptive_header()
        assert not countries.without_header().has_descriptive_header()

    def test_equality(self, countries):
        clone = Table(countries.header, countries.rows, context=countries.context)
        assert countries == clone
        assert countries != countries.without_header()
