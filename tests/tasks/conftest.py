"""Shared fixtures for task tests: corpora, tokenizer, tiny encoders."""

import numpy as np
import pytest

from repro.corpus import KnowledgeBase, generate_git_corpus, generate_wiki_corpus
from repro.models import EncoderConfig, TableBert, Tapas, Turl
from repro.text import train_tokenizer


def corpus_texts(tables):
    texts = []
    for table in tables:
        texts.append(table.context.text())
        texts.append(" ".join(table.header))
        for _, _, cell in table.iter_cells():
            texts.append(cell.text())
    return texts


@pytest.fixture(scope="session")
def kb():
    return KnowledgeBase(seed=0)


@pytest.fixture(scope="session")
def wiki_tables(kb):
    return generate_wiki_corpus(kb, 24, seed=0)


@pytest.fixture(scope="session")
def git_tables():
    return generate_git_corpus(12, seed=0)


@pytest.fixture(scope="session")
def tokenizer(wiki_tables, git_tables):
    extra = ["what is the when how many entries are there lowest highest "
             "total average where and not below above at most least"]
    return train_tokenizer(corpus_texts(wiki_tables + git_tables) + extra * 3,
                           vocab_size=900)


@pytest.fixture(scope="session")
def config(tokenizer, kb):
    return EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=16, num_heads=2, num_layers=1,
        hidden_dim=32, max_position=160, num_entities=kb.num_entities,
    )


@pytest.fixture
def bert(config, tokenizer):
    return TableBert(config, tokenizer, np.random.default_rng(0))


@pytest.fixture
def tapas(config, tokenizer):
    return Tapas(config, tokenizer, np.random.default_rng(0))


@pytest.fixture
def turl(config, tokenizer):
    return Turl(config, tokenizer, np.random.default_rng(0))
