"""Tests for column type prediction."""

import numpy as np
import pytest

from repro.corpus import build_coltype_dataset
from repro.tasks import (
    ColumnTypePredictor,
    FinetuneConfig,
    build_label_set,
    finetune,
)


@pytest.fixture
def examples(wiki_tables):
    return build_coltype_dataset(wiki_tables)


class TestLabelSet:
    def test_sorted_distinct(self, examples):
        labels = build_label_set(examples)
        assert labels == sorted(set(labels))
        assert all(e.label in labels for e in examples)


class TestColumnTypePredictor:
    def test_empty_labels_rejected(self, bert):
        with pytest.raises(ValueError):
            ColumnTypePredictor(bert, [], np.random.default_rng(0))

    def test_logits_shape(self, bert, examples):
        labels = build_label_set(examples)
        predictor = ColumnTypePredictor(bert, labels, np.random.default_rng(0))
        assert predictor.logits(examples[:4]).shape == (4, len(labels))

    def test_predictions_in_label_set(self, bert, examples):
        labels = build_label_set(examples)
        predictor = ColumnTypePredictor(bert, labels, np.random.default_rng(0))
        assert all(p.label in labels for p in predictor.predict(examples[:5]))

    def test_finetune_reduces_loss(self, bert, examples):
        labels = build_label_set(examples)
        predictor = ColumnTypePredictor(bert, labels, np.random.default_rng(0))
        history = finetune(predictor, examples,
                           FinetuneConfig(epochs=4, batch_size=8,
                                          learning_rate=3e-3))
        assert np.mean([r.loss for r in history[-3:]]) < np.mean([r.loss for r in history[:3]])

    def test_learns_types_from_values(self, bert, examples):
        """Column values alone (header hidden) should be enough to beat the
        majority class on training data."""
        labels = build_label_set(examples)
        predictor = ColumnTypePredictor(bert, labels, np.random.default_rng(0))
        finetune(predictor, examples,
                 FinetuneConfig(epochs=10, batch_size=8, learning_rate=3e-3))
        result = predictor.evaluate(examples)
        from collections import Counter
        majority = Counter(e.label for e in examples).most_common(1)[0][1]
        assert result["accuracy"] > majority / len(examples)
