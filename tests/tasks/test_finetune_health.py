"""Health-guard behavior of the generic fine-tuning loop.

Uses a tiny synthetic task (no encoder) so the loop's skip/rollback
mechanics can be driven deterministically: the task's loss can be forced
to NaN for chosen steps.
"""

import numpy as np
import pytest

from repro.nn import Module, Parameter, Tensor
from repro.runtime import (
    HealthConfig,
    InMemorySink,
    MetricsRegistry,
    TrainingDivergedError,
    using_registry,
)
from repro.tasks import FinetuneConfig, finetune


class ToyTask(Module):
    """Minimize ``(w - target)^2``; NaN-able on selected loss calls."""

    def __init__(self, bad_calls=()):
        super().__init__()
        self.weight = Parameter(np.array([5.0]))
        self.bad_calls = set(bad_calls)
        self.calls = 0

    def loss(self, batch):
        self.calls += 1
        value = ((self.weight - 1.0) ** 2).sum()
        if self.calls in self.bad_calls:
            value.data = np.array(float("nan"))
        return value


def _run(task, steps, health=None):
    examples = list(range(8))   # batch_size 8 -> one step per epoch
    config = FinetuneConfig(epochs=steps, batch_size=8, learning_rate=0.1)
    return finetune(task, examples, config, health=health)


class TestFinetuneHealthGuard:
    def test_clean_run_unchanged(self):
        task = ToyTask()
        history = _run(task, steps=10)
        assert len(history) == 10
        assert not any(r.extras.get("skipped") for r in history)
        assert float(task.weight.data[0]) < 5.0

    def test_nan_step_skipped(self):
        registry = MetricsRegistry()
        sink = registry.add_sink(InMemorySink())
        task = ToyTask(bad_calls={3})
        with using_registry(registry):
            history = _run(task, steps=6)
        skipped = [r for r in history if r.extras.get("skipped")]
        assert len(skipped) == 1 and skipped[0].step == 2
        events = sink.of_kind("health")
        assert len(events) == 1
        assert events[0]["source"] == "finetune"
        assert events[0]["reason"] == "non_finite_loss"

    def test_rollback_restores_weights_and_backs_off_lr(self):
        health = HealthConfig(max_consecutive_bad=2, lr_backoff=0.5)
        task = ToyTask(bad_calls={4, 5})
        history = _run(task, steps=8, health=health)
        assert len(history) == 8
        # After the two-step NaN streak the guard rolled back; the
        # post-rollback records carry the reduced learning rate.
        assert history[-1].lr == pytest.approx(0.1 * 0.5)
        assert np.isfinite(task.weight.data).all()

    def test_unrecoverable_divergence_raises(self):
        health = HealthConfig(max_consecutive_bad=1, max_rollbacks=1)
        task = ToyTask(bad_calls=set(range(1, 100)))
        with pytest.raises(TrainingDivergedError):
            _run(task, steps=20, health=health)
