"""Tests for the data imputation task (§3.4)."""

import numpy as np
import pytest

from repro.corpus import build_imputation_dataset
from repro.tasks import (
    EntityImputer,
    FinetuneConfig,
    ValueImputer,
    build_value_vocabulary,
    finetune,
)


@pytest.fixture
def examples(wiki_tables):
    rng = np.random.default_rng(0)
    return build_imputation_dataset(wiki_tables, rng, per_table=2)


class TestValueVocabulary:
    def test_frequency_ordered(self, examples):
        vocab = build_value_vocabulary(examples)
        counts = {}
        for e in examples:
            counts[e.answer_text] = counts.get(e.answer_text, 0) + 1
        assert counts[vocab[0]] == max(counts.values())

    def test_max_size(self, examples):
        assert len(build_value_vocabulary(examples, max_size=5)) == 5

    def test_distinct(self, examples):
        vocab = build_value_vocabulary(examples)
        assert len(vocab) == len(set(vocab))


class TestValueImputer:
    def test_empty_vocab_rejected(self, bert):
        with pytest.raises(ValueError):
            ValueImputer(bert, [], np.random.default_rng(0))

    def test_logit_shape(self, bert, examples):
        vocab = build_value_vocabulary(examples)
        imputer = ValueImputer(bert, vocab, np.random.default_rng(0))
        logits = imputer.logits(examples[:3])
        assert logits.shape == (3, len(vocab))

    def test_loss_positive(self, bert, examples):
        vocab = build_value_vocabulary(examples)
        imputer = ValueImputer(bert, vocab, np.random.default_rng(0))
        assert float(imputer.loss(examples[:4]).data) > 0

    def test_finetune_reduces_loss(self, bert, examples):
        vocab = build_value_vocabulary(examples)
        imputer = ValueImputer(bert, vocab, np.random.default_rng(0))
        history = finetune(imputer, examples,
                           FinetuneConfig(epochs=6, batch_size=8,
                                          learning_rate=3e-3, seed=0))
        assert np.mean([r.loss for r in history[-3:]]) < np.mean([r.loss for r in history[:3]])

    def test_evaluate_keys(self, bert, examples):
        vocab = build_value_vocabulary(examples)
        imputer = ValueImputer(bert, vocab, np.random.default_rng(0))
        result = imputer.evaluate(examples[:5])
        assert set(result) == {"accuracy", "macro_f1", "coverage"}
        assert 0.0 <= result["accuracy"] <= 1.0

    def test_predictions_from_vocabulary(self, bert, examples):
        vocab = build_value_vocabulary(examples)
        imputer = ValueImputer(bert, vocab, np.random.default_rng(0))
        for prediction in imputer.predict(examples[:5]):
            assert prediction.label in vocab

    def test_training_learns_something(self, bert, examples):
        """After fine-tuning, train-set accuracy must beat the majority
        baseline — the smoke test that the cell-pooling pathway learns."""
        vocab = build_value_vocabulary(examples)
        imputer = ValueImputer(bert, vocab, np.random.default_rng(0))
        before = imputer.evaluate(examples)["accuracy"]
        finetune(imputer, examples,
                 FinetuneConfig(epochs=12, batch_size=8, learning_rate=3e-3))
        after = imputer.evaluate(examples)["accuracy"]
        assert after > before


class TestEntityImputer:
    def test_requires_turl(self, bert):
        with pytest.raises(TypeError):
            EntityImputer(bert)

    def test_loss_and_predict(self, turl, examples):
        imputer = EntityImputer(turl)
        assert float(imputer.loss(examples[:4]).data) > 0
        predictions = imputer.predict(examples[:4])
        assert len(predictions) == 4

    def test_evaluate_on_entity_examples(self, turl, examples):
        imputer = EntityImputer(turl)
        result = imputer.evaluate(examples)
        assert 0.0 <= result["accuracy"] <= 1.0

    def test_finetune_improves_train_accuracy(self, turl, examples):
        entity_examples = [e for e in examples if e.answer_entity_id is not None]
        imputer = EntityImputer(turl)
        before = imputer.evaluate(entity_examples)["accuracy"]
        finetune(imputer, entity_examples,
                 FinetuneConfig(epochs=10, batch_size=8, learning_rate=3e-3))
        after = imputer.evaluate(entity_examples)["accuracy"]
        assert after >= before
        assert after > 0.1  # far above random over ~180 entities
