"""Tests for entity linking."""

import numpy as np
import pytest

from repro.pretrain import Pretrainer, PretrainConfig
from repro.tasks import EntityLinker, build_linking_dataset


@pytest.fixture
def examples(kb, wiki_tables):
    return build_linking_dataset(wiki_tables, np.random.default_rng(0),
                                 per_table=2)


class TestDatasetBuilder:
    def test_mention_annotation_stripped(self, examples):
        for example in examples:
            assert example.table.cell(example.row, example.column).entity_id is None

    def test_gold_ids_valid(self, kb, examples):
        for example in examples:
            assert 0 <= example.gold_entity_id < kb.num_entities

    def test_mention_text_matches_gold_name(self, kb, examples):
        for example in examples:
            mention = example.table.cell(example.row, example.column).text()
            assert mention == kb.entity(example.gold_entity_id).name

    def test_per_table_cap(self, wiki_tables):
        examples = build_linking_dataset(wiki_tables,
                                         np.random.default_rng(1), per_table=1)
        ids = {}
        for e in examples:
            ids[e.table.table_id] = ids.get(e.table.table_id, 0) + 1
        assert all(v <= 1 for v in ids.values())


class TestEntityLinker:
    def test_requires_turl(self, bert, kb):
        with pytest.raises(TypeError):
            EntityLinker(bert, kb)

    def test_candidate_generation_exact_match(self, turl, kb):
        linker = EntityLinker(turl, kb)
        candidates = linker.candidates("France")
        assert candidates
        assert candidates[0].name == "France"

    def test_candidate_generation_partial_tokens(self, turl, kb):
        linker = EntityLinker(turl, kb)
        # Person names share tokens: "satyajit ray" overlaps several.
        person = kb.entities_of_type("person")[0]
        candidates = linker.candidates(person.name)
        assert any(c.entity_id == person.entity_id for c in candidates)

    def test_no_candidates_for_garbage(self, turl, kb):
        linker = EntityLinker(turl, kb)
        assert linker.candidates("zzzz qqqq") == []

    def test_max_candidates_respected(self, turl, kb):
        linker = EntityLinker(turl, kb, max_candidates=3)
        assert len(linker.candidates("ray")) <= 3

    def test_max_candidates_validated(self, turl, kb):
        with pytest.raises(ValueError):
            EntityLinker(turl, kb, max_candidates=0)

    def test_link_returns_valid_or_none(self, turl, kb, examples):
        linker = EntityLinker(turl, kb)
        for example in examples[:6]:
            predicted = linker.link(example)
            assert predicted is None or 0 <= predicted < kb.num_entities

    def test_evaluate_keys(self, turl, kb, examples):
        linker = EntityLinker(turl, kb)
        result = linker.evaluate(examples[:8])
        assert set(result) == {"accuracy", "candidate_recall"}
        assert result["candidate_recall"] >= result["accuracy"] - 1e-9

    def test_candidate_recall_high_for_exact_mentions(self, turl, kb, examples):
        # Mentions are exact KB names, so lexical recall should be near 1.
        linker = EntityLinker(turl, kb)
        result = linker.evaluate(examples)
        assert result["candidate_recall"] > 0.9

    def test_pretraining_improves_or_maintains_linking(self, kb, wiki_tables,
                                                       config, tokenizer):
        from repro.models import Turl
        examples = build_linking_dataset(wiki_tables,
                                         np.random.default_rng(2), per_table=2)
        fresh = Turl(config, tokenizer, np.random.default_rng(0))
        base = EntityLinker(fresh, kb).evaluate(examples)["accuracy"]

        trained = Turl(config, tokenizer, np.random.default_rng(0))
        Pretrainer(trained, PretrainConfig(steps=30, batch_size=6,
                                           learning_rate=5e-3,
                                           mer_mask_probability=0.5)
                   ).train(wiki_tables)
        tuned = EntityLinker(trained, kb).evaluate(examples)["accuracy"]
        assert tuned >= base - 0.1  # never catastrophically worse
