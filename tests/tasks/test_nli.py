"""Tests for table NLI / fact verification."""

import numpy as np
import pytest

from repro.corpus import build_nli_dataset
from repro.tasks import FinetuneConfig, NliClassifier, finetune


@pytest.fixture
def examples(wiki_tables):
    return build_nli_dataset(wiki_tables, np.random.default_rng(0), per_table=2)


class TestNliClassifier:
    def test_logit_shape(self, bert, examples):
        clf = NliClassifier(bert, np.random.default_rng(0))
        assert clf.logits(examples[:3]).shape == (3, 2)

    def test_predictions_binary(self, bert, examples):
        clf = NliClassifier(bert, np.random.default_rng(0))
        assert {p.label for p in clf.predict(examples[:6])} <= {0, 1}

    def test_evaluate_keys(self, bert, examples):
        clf = NliClassifier(bert, np.random.default_rng(0))
        result = clf.evaluate(examples[:6])
        assert set(result) == {"accuracy", "precision", "recall", "f1"}

    def test_finetune_reduces_loss(self, bert, examples):
        clf = NliClassifier(bert, np.random.default_rng(0))
        history = finetune(clf, examples,
                           FinetuneConfig(epochs=5, batch_size=8,
                                          learning_rate=3e-3))
        assert np.mean([r.loss for r in history[-3:]]) < np.mean([r.loss for r in history[:3]])

    def test_finetune_beats_chance_on_train(self, bert, examples):
        clf = NliClassifier(bert, np.random.default_rng(0))
        finetune(clf, examples,
                 FinetuneConfig(epochs=12, batch_size=8, learning_rate=3e-3))
        assert clf.evaluate(examples)["accuracy"] > 0.55

    def test_freeze_encoder_probe(self, bert, examples):
        clf = NliClassifier(bert, np.random.default_rng(0))
        before = bert.token_embedding.weight.data.copy()
        finetune(clf, examples[:8],
                 FinetuneConfig(epochs=1, batch_size=4, freeze_encoder=True),
                 encoder=bert)
        np.testing.assert_array_equal(bert.token_embedding.weight.data, before)

    def test_freeze_requires_encoder_argument(self, bert, examples):
        clf = NliClassifier(bert, np.random.default_rng(0))
        with pytest.raises(ValueError):
            finetune(clf, examples[:4],
                     FinetuneConfig(epochs=1, freeze_encoder=True))
