"""The unified TaskPredictor surface across all six task classes."""

import numpy as np
import pytest

from repro.corpus import (
    build_coltype_dataset,
    build_imputation_dataset,
    build_nli_dataset,
    build_qa_dataset,
    build_retrieval_dataset,
    build_text2sql_dataset,
)
from repro.tasks import (
    BiEncoderRetriever,
    CellSelectionQA,
    ColumnTypePredictor,
    NliClassifier,
    Prediction,
    SketchParser,
    TaskPredictor,
    ValueImputer,
    build_label_set,
    build_value_vocabulary_from_tables,
    predict_in_batches,
)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def _predictor_and_examples(task, bert, tapas, tables, rng):
    data_rng = np.random.default_rng(1)
    if task == "qa":
        return (CellSelectionQA(tapas, rng),
                build_qa_dataset(tables, data_rng, per_table=1)[:4])
    if task == "nli":
        return (NliClassifier(bert, rng),
                build_nli_dataset(tables, data_rng, per_table=1)[:4])
    if task == "imputation":
        vocabulary = build_value_vocabulary_from_tables(tables)
        return (ValueImputer(bert, vocabulary, rng),
                build_imputation_dataset(tables, data_rng, per_table=1)[:4])
    if task == "coltype":
        examples = build_coltype_dataset(tables)[:4]
        return (ColumnTypePredictor(bert, build_label_set(examples), rng),
                examples)
    if task == "retrieval":
        return (BiEncoderRetriever(bert, corpus=tables),
                build_retrieval_dataset(tables, data_rng, per_table=1)[:4])
    if task == "text2sql":
        return (SketchParser(tapas, rng),
                build_text2sql_dataset(tables, data_rng, per_table=1)[:4])
    raise AssertionError(task)


ALL_TASKS = ("qa", "nli", "imputation", "coltype", "retrieval", "text2sql")


class TestProtocolConformance:
    @pytest.mark.parametrize("task", ALL_TASKS)
    def test_predict_returns_predictions(self, task, bert, tapas,
                                         wiki_tables, rng):
        predictor, examples = _predictor_and_examples(
            task, bert, tapas, wiki_tables, rng)
        assert isinstance(predictor, TaskPredictor)
        assert predictor.task_name == task
        predictions = predictor.predict(examples, batch_size=2)
        assert len(predictions) == len(examples)
        assert all(isinstance(p, Prediction) for p in predictions)
        assert all(isinstance(p.score, float) for p in predictions)

    @pytest.mark.parametrize("task", ALL_TASKS)
    def test_batch_size_does_not_change_labels(self, task, bert, tapas,
                                               wiki_tables, rng):
        predictor, examples = _predictor_and_examples(
            task, bert, tapas, wiki_tables, rng)
        one_by_one = predictor.predict(examples, batch_size=1)
        all_at_once = predictor.predict(examples, batch_size=len(examples))
        assert [p.label for p in one_by_one] == [p.label for p in all_at_once]

    @pytest.mark.parametrize("task", ALL_TASKS)
    def test_deprecated_alias_warns_and_matches(self, task, bert, tapas,
                                                wiki_tables, rng):
        predictor, examples = _predictor_and_examples(
            task, bert, tapas, wiki_tables, rng)
        if task == "retrieval":
            pytest.skip("retrieval kept rank()/index(), no legacy predict")
        with pytest.deprecated_call():
            labels = predictor.predict_labels(examples)
        assert labels == [p.label for p in predictor.predict(examples)]

    @pytest.mark.parametrize("task", ALL_TASKS)
    def test_evaluate_still_works(self, task, bert, tapas, wiki_tables, rng):
        predictor, examples = _predictor_and_examples(
            task, bert, tapas, wiki_tables, rng)
        if task == "retrieval":
            result = predictor.evaluate(examples, wiki_tables)
        else:
            result = predictor.evaluate(examples)
        assert result and all(isinstance(v, float) for v in result.values())


class TestPredictInBatches:
    def test_empty_examples(self, bert, rng):
        clf = NliClassifier(bert, rng)
        assert clf.predict([]) == []

    def test_rejects_bad_batch_size(self, bert, rng, wiki_tables):
        clf = NliClassifier(bert, rng)
        _, examples = _predictor_and_examples("nli", bert, None,
                                              wiki_tables, rng)
        with pytest.raises(ValueError):
            clf.predict(examples, batch_size=0)

    def test_restores_training_mode(self, bert, rng, wiki_tables):
        clf = NliClassifier(bert, rng)
        _, examples = _predictor_and_examples("nli", bert, None,
                                              wiki_tables, rng)
        clf.train()
        clf.predict(examples[:2])
        assert clf.training

    def test_chunking_calls(self, bert, rng):
        calls = []

        def fake_batch(chunk):
            calls.append(len(chunk))
            return [Prediction(label=None)] * len(chunk)

        clf = NliClassifier(bert, rng)
        out = predict_in_batches(clf, list(range(5)), 2, fake_batch)
        assert calls == [2, 2, 1]
        assert len(out) == 5
