"""Tests for cell-selection QA."""

import numpy as np
import pytest

from repro.corpus import build_qa_dataset
from repro.tasks import CellSelectionQA, FinetuneConfig, finetune


@pytest.fixture
def examples(wiki_tables):
    return build_qa_dataset(wiki_tables, np.random.default_rng(0), per_table=2)


class TestCellSelectionQA:
    def test_reuses_tapas_head(self, tapas):
        qa = CellSelectionQA(tapas, np.random.default_rng(0))
        assert qa.head is tapas.cell_selection

    def test_fresh_head_for_bert(self, bert):
        qa = CellSelectionQA(bert, np.random.default_rng(0))
        assert qa.head is not None

    def test_loss_positive(self, tapas, examples):
        qa = CellSelectionQA(tapas, np.random.default_rng(0))
        assert float(qa.loss(examples[:4]).data) > 0

    def test_predictions_are_cells(self, tapas, examples):
        qa = CellSelectionQA(tapas, np.random.default_rng(0))
        for example, prediction in zip(examples[:5], qa.predict(examples[:5])):
            assert prediction.label is not None
            row, col = prediction.label
            assert 0 <= row < example.table.num_rows
            assert 0 <= col < example.table.num_columns

    def test_evaluate_keys_and_range(self, tapas, examples):
        qa = CellSelectionQA(tapas, np.random.default_rng(0))
        result = qa.evaluate(examples[:6])
        assert set(result) == {"cell_accuracy", "value_accuracy"}
        assert 0.0 <= result["cell_accuracy"] <= result["value_accuracy"] <= 1.0

    def test_finetune_reduces_loss(self, tapas, examples):
        qa = CellSelectionQA(tapas, np.random.default_rng(0))
        history = finetune(qa, examples,
                           FinetuneConfig(epochs=4, batch_size=8,
                                          learning_rate=3e-3))
        assert np.mean([r.loss for r in history[-3:]]) < np.mean([r.loss for r in history[:3]])

    def test_finetune_beats_untrained(self, tapas, examples):
        qa = CellSelectionQA(tapas, np.random.default_rng(0))
        before = qa.evaluate(examples)["cell_accuracy"]
        finetune(qa, examples,
                 FinetuneConfig(epochs=10, batch_size=8, learning_rate=3e-3))
        after = qa.evaluate(examples)["cell_accuracy"]
        assert after > before
