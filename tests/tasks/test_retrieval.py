"""Tests for table retrieval (dense bi-encoder + lexical baseline)."""

import numpy as np
import pytest

from repro.corpus import build_retrieval_dataset
from repro.tasks import BiEncoderRetriever, FinetuneConfig, LexicalRetriever, finetune


@pytest.fixture
def examples(wiki_tables):
    return build_retrieval_dataset(wiki_tables, np.random.default_rng(0))


class TestBiEncoder:
    def test_requires_bound_corpus(self, bert, examples):
        retriever = BiEncoderRetriever(bert)
        with pytest.raises(ValueError):
            retriever.loss(examples[:4])

    def test_index_shapes(self, bert, wiki_tables):
        retriever = BiEncoderRetriever(bert, corpus=wiki_tables)
        matrix, ids = retriever.index(wiki_tables)
        assert matrix.shape == (len(wiki_tables), bert.config.dim)
        assert ids == [t.table_id for t in wiki_tables]
        np.testing.assert_allclose(np.linalg.norm(matrix, axis=1),
                                   np.ones(len(wiki_tables)), atol=1e-6)

    def test_rank_returns_permutation(self, bert, wiki_tables, examples):
        retriever = BiEncoderRetriever(bert, corpus=wiki_tables)
        index = retriever.index(wiki_tables)
        ranking = retriever.rank(examples[0].query, index)
        assert sorted(ranking) == sorted(t.table_id for t in wiki_tables)

    def test_evaluate_keys(self, bert, wiki_tables, examples):
        retriever = BiEncoderRetriever(bert, corpus=wiki_tables)
        result = retriever.evaluate(examples[:8], wiki_tables)
        assert set(result) == {"hits@1", "hits@3", "mrr"}

    def test_contrastive_training_improves_ranking(self, bert, wiki_tables, examples):
        retriever = BiEncoderRetriever(bert, corpus=wiki_tables)
        before = retriever.evaluate(examples, wiki_tables)["mrr"]
        finetune(retriever, examples,
                 FinetuneConfig(epochs=8, batch_size=8, learning_rate=3e-3))
        after = retriever.evaluate(examples, wiki_tables)["mrr"]
        assert after > before


class TestLexicalBaseline:
    def test_rank_before_index_rejected(self):
        with pytest.raises(ValueError):
            LexicalRetriever().rank("anything")

    def test_exact_title_match_ranks_first(self, wiki_tables):
        retriever = LexicalRetriever()
        retriever.index(wiki_tables)
        target = wiki_tables[0]
        query = target.context.title + " " + target.cell(0, 0).text()
        ranking = retriever.rank(query)
        assert target.table_id in ranking[:3]

    def test_evaluate_strong_on_generated_queries(self, wiki_tables, examples):
        retriever = LexicalRetriever()
        result = retriever.evaluate(examples, wiki_tables)
        # Queries are built from table content, so BM25 should do well.
        assert result["mrr"] > 0.3

    def test_untrained_dense_weaker_than_lexical(self, bert, wiki_tables, examples):
        dense = BiEncoderRetriever(bert, corpus=wiki_tables)
        lexical = LexicalRetriever()
        dense_mrr = dense.evaluate(examples, wiki_tables)["mrr"]
        lexical_mrr = lexical.evaluate(examples, wiki_tables)["mrr"]
        assert lexical_mrr >= dense_mrr
