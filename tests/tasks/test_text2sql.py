"""Tests for the sketch-based text-to-SQL parser."""

import numpy as np
import pytest

from repro.corpus import build_text2sql_dataset
from repro.sql import Aggregate, SelectQuery
from repro.tasks import FinetuneConfig, SketchParser, finetune


@pytest.fixture
def examples(wiki_tables):
    return build_text2sql_dataset(wiki_tables, np.random.default_rng(0),
                                  per_table=2)


class TestSketchParser:
    def test_loss_positive(self, tapas, examples):
        parser = SketchParser(tapas, np.random.default_rng(0))
        assert float(parser.loss(examples[:4]).data) > 0

    def test_predictions_are_queries(self, tapas, examples):
        parser = SketchParser(tapas, np.random.default_rng(0))
        for example, p in zip(examples[:5], parser.predict(examples[:5])):
            predicted = p.label
            assert isinstance(predicted, SelectQuery)
            assert predicted.select_column in example.table.header
            assert len(predicted.conditions) <= 1

    def test_predicted_conditions_use_table_values(self, tapas, examples):
        parser = SketchParser(tapas, np.random.default_rng(0))
        for example, p in zip(examples[:8], parser.predict(examples[:8])):
            for condition in p.label.conditions:
                column = example.table.column_index(condition.column)
                values = {cell.text() for cell in example.table.column_values(column)}
                assert str(condition.value) in values

    def test_evaluate_keys(self, tapas, examples):
        parser = SketchParser(tapas, np.random.default_rng(0))
        result = parser.evaluate(examples[:5])
        assert set(result) == {"sketch_accuracy", "denotation_accuracy"}
        assert result["sketch_accuracy"] <= result["denotation_accuracy"] + 1e-9

    def test_finetune_reduces_loss(self, tapas, examples):
        parser = SketchParser(tapas, np.random.default_rng(0))
        history = finetune(parser, examples,
                           FinetuneConfig(epochs=4, batch_size=8,
                                          learning_rate=3e-3))
        assert np.mean([r.loss for r in history[-3:]]) < np.mean([r.loss for r in history[:3]])

    def test_finetune_improves_denotation_accuracy(self, tapas, examples):
        parser = SketchParser(tapas, np.random.default_rng(0))
        before = parser.evaluate(examples)["denotation_accuracy"]
        finetune(parser, examples,
                 FinetuneConfig(epochs=10, batch_size=8, learning_rate=3e-3))
        after = parser.evaluate(examples)["denotation_accuracy"]
        assert after >= before
        assert after > 0.1
