"""Tests for text normalization helpers."""

from repro.text import normalize_number, normalize_text, word_tokenize


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("Hello WORLD") == "hello world"

    def test_strips_accents(self):
        assert normalize_text("Café São") == "cafe sao"

    def test_collapses_whitespace(self):
        assert normalize_text("a\t b\n  c") == "a b c"


class TestWordTokenize:
    def test_words_and_punct(self):
        assert word_tokenize("hello, world!") == ["hello", ",", "world", "!"]

    def test_decimals_kept_whole(self):
        assert word_tokenize("pop is 25.69 million") == ["pop", "is", "25.69", "million"]

    def test_empty(self):
        assert word_tokenize("") == []

    def test_hyphenated(self):
        assert word_tokenize("hours-per-week") == ["hours", "-", "per", "-", "week"]


class TestNormalizeNumber:
    def test_integer_float(self):
        assert normalize_number(25.0) == "25"

    def test_int(self):
        assert normalize_number(42) == "42"

    def test_float_trimmed(self):
        assert normalize_number(3.14159265) == "3.14159"

    def test_bool(self):
        assert normalize_number(True) == "true"
