"""Tests for the WordPiece tokenizer, including property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import Vocab, WordPieceTokenizer, train_tokenizer

CORPUS = [
    "the population of france is 67.75 million",
    "the population of australia is 25.69 million",
    "country capital population",
    "playing played player plays",
    "tables are relational data structures",
    "the capital of france is paris",
]


@pytest.fixture(scope="module")
def tokenizer():
    return train_tokenizer(CORPUS, vocab_size=400)


class TestTraining:
    def test_vocab_within_budget(self, tokenizer):
        assert len(tokenizer.vocab) <= 400

    def test_frequent_words_become_single_tokens(self, tokenizer):
        assert tokenizer.tokenize("population") == ["population"]
        assert tokenizer.tokenize("the") == ["the"]

    def test_shared_stems_reused(self, tokenizer):
        pieces = tokenizer.tokenize("player")
        assert len(pieces) >= 1
        joined = pieces[0] + "".join(p[2:] for p in pieces[1:])
        assert joined == "player"

    def test_min_pair_frequency_limits_merges(self):
        tiny = train_tokenizer(["ab"], vocab_size=1000, min_pair_frequency=2)
        # 'ab' occurs once, so no merge happens: it splits into characters.
        assert tiny.tokenize("ab") == ["a", "##b"]


class TestEncoding:
    def test_continuation_pieces_marked(self, tokenizer):
        for piece in tokenizer.tokenize("populations")[1:]:
            assert piece.startswith("##")

    def test_unknown_characters_become_unk(self, tokenizer):
        assert tokenizer.vocab.unk_token in tokenizer.tokenize("日本")

    def test_overlong_word_is_unk(self):
        tok = WordPieceTokenizer(Vocab(["a"]), max_word_chars=5)
        assert tok.tokenize_word("a" * 6) == ["[UNK]"]

    def test_encode_decode_roundtrip(self, tokenizer):
        text = "the population of france"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_decode_skips_specials(self, tokenizer):
        ids = [tokenizer.vocab.cls_id] + tokenizer.encode("paris") + [tokenizer.vocab.sep_id]
        assert tokenizer.decode(ids) == "paris"

    def test_numbers_tokenized(self, tokenizer):
        pieces = tokenizer.tokenize("67.75")
        assert pieces  # never empty
        rebuilt = pieces[0] + "".join(p[2:] for p in pieces[1:])
        assert rebuilt == "67.75"


class TestPersistence:
    def test_save_load_identical_encoding(self, tokenizer, tmp_path):
        path = tokenizer.save(tmp_path / "tok.json")
        loaded = WordPieceTokenizer.load(path)
        text = "population of australia is 25.69"
        assert loaded.encode(text) == tokenizer.encode(text)


class TestProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_ascii_words_never_unk(self, tokenizer, word):
        # Training corpus covers all lowercase ascii letters used here?
        # Not necessarily — but pieces must always rebuild the word or be UNK.
        pieces = tokenizer.tokenize_word(word)
        if tokenizer.vocab.unk_token not in pieces:
            rebuilt = pieces[0] + "".join(p[2:] for p in pieces[1:])
            assert rebuilt == word

    @given(st.lists(st.sampled_from(CORPUS), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_corpus_sentences_roundtrip(self, tokenizer, sentences):
        text = " ".join(sentences)
        assert tokenizer.decode(tokenizer.encode(text)) == text

    @given(st.text(max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_tokenize_never_crashes(self, tokenizer, text):
        pieces = tokenizer.tokenize(text)
        assert isinstance(pieces, list)
