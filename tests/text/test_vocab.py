"""Tests for the vocabulary."""

import pytest

from repro.text import SPECIAL_TOKENS, Vocab


class TestVocab:
    def test_specials_reserved_first(self):
        vocab = Vocab()
        for index, token in enumerate(SPECIAL_TOKENS):
            assert vocab.token(index) == token

    def test_convenience_ids(self):
        vocab = Vocab()
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.cls_id == 2
        assert vocab.sep_id == 3
        assert vocab.mask_id == 4

    def test_add_idempotent(self):
        vocab = Vocab()
        first = vocab.add("hello")
        second = vocab.add("hello")
        assert first == second
        assert len(vocab) == len(SPECIAL_TOKENS) + 1

    def test_unknown_falls_back_to_unk(self):
        vocab = Vocab(["known"])
        assert vocab.id("unknown-token") == vocab.unk_id

    def test_contains(self):
        vocab = Vocab(["x"])
        assert "x" in vocab
        assert "y" not in vocab

    def test_save_load_roundtrip(self, tmp_path):
        vocab = Vocab(["alpha", "beta"])
        path = vocab.save(tmp_path / "vocab.json")
        loaded = Vocab.load(path)
        assert len(loaded) == len(vocab)
        assert loaded.id("beta") == vocab.id("beta")

    def test_load_rejects_corrupt_specials(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('["not-pad", "x"]')
        with pytest.raises(ValueError):
            Vocab.load(path)
