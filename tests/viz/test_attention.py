"""Tests for attention visualization utilities."""

import numpy as np
import pytest

from repro.viz import attention_entropy, attention_heatmap, top_attended_tokens


def uniform(n):
    return np.full((n, n), 1.0 / n)


class TestHeatmap:
    def test_renders_one_line_per_token(self):
        out = attention_heatmap(uniform(4), ["a", "b", "c", "d"])
        assert len(out.splitlines()) == 4

    def test_truncates_to_max_tokens(self):
        out = attention_heatmap(uniform(10), [f"t{i}" for i in range(10)],
                                max_tokens=3)
        assert len(out.splitlines()) == 3

    def test_peak_rendered_darkest(self):
        weights = uniform(3)
        weights[0] = [0.0, 0.0, 1.0]
        out = attention_heatmap(weights, ["x", "y", "z"]).splitlines()[0]
        assert out.rstrip("|").endswith("@")

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            attention_heatmap(np.ones((2, 3)), ["a", "b"])
        with pytest.raises(ValueError):
            attention_heatmap(uniform(2), ["only-one"])


class TestEntropy:
    def test_uniform_is_log_n(self):
        assert attention_entropy(uniform(8)) == pytest.approx(np.log(8))

    def test_onehot_is_zero(self):
        assert attention_entropy(np.eye(5)) == pytest.approx(0.0, abs=1e-6)

    def test_batched_input(self):
        stacked = np.stack([uniform(4), np.eye(4)])
        value = attention_entropy(stacked)
        assert 0 < value < np.log(4)


class TestTopAttended:
    def test_ranking(self):
        weights = np.array([[0.1, 0.7, 0.2]])
        top = top_attended_tokens(np.vstack([weights, weights, weights]),
                                  ["a", "b", "c"], query_index=0, k=2)
        assert top[0] == ("b", pytest.approx(0.7))
        assert top[1][0] == "c"

    def test_index_validated(self):
        with pytest.raises(IndexError):
            top_attended_tokens(uniform(3), ["a", "b", "c"], query_index=9)
