"""Tests for embedding inspection utilities."""

import numpy as np
import pytest

from repro.viz import nearest_neighbors, pca_2d, similarity_report


@pytest.fixture
def matrix():
    return np.array([
        [1.0, 0.0, 0.0],
        [0.9, 0.1, 0.0],   # close to row 0
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ])


LABELS = ["paris", "lyon", "tokyo", "lima"]


class TestNearestNeighbors:
    def test_closest_first(self, matrix):
        neighbours = nearest_neighbors(matrix, LABELS, 0, k=2)
        assert neighbours[0][0] == "lyon"

    def test_query_excluded(self, matrix):
        names = [n for n, _ in nearest_neighbors(matrix, LABELS, 0, k=4)]
        assert "paris" not in names

    def test_validation(self, matrix):
        with pytest.raises(ValueError):
            nearest_neighbors(matrix, ["too", "few"], 0)
        with pytest.raises(IndexError):
            nearest_neighbors(matrix, LABELS, 99)


class TestPca:
    def test_output_shape(self, matrix):
        assert pca_2d(matrix).shape == (4, 2)

    def test_preserves_separation(self):
        tight = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 10.0], [10.1, 10.0]])
        projected = pca_2d(tight)
        d_close = np.linalg.norm(projected[0] - projected[1])
        d_far = np.linalg.norm(projected[0] - projected[2])
        assert d_far > d_close

    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            pca_2d(np.ones((1, 3)))


class TestReport:
    def test_one_line_per_label(self, matrix):
        report = similarity_report(matrix, LABELS, k=2)
        assert len(report.splitlines()) == 4
        assert report.startswith("paris:")
