"""Tests for saliency and attention attribution."""

import numpy as np
import pytest

from repro.models import EncoderConfig, TableBert, Tapas
from repro.tables import Table, TableContext
from repro.text import train_tokenizer
from repro.viz import (
    attention_attribution,
    gradient_saliency,
    render_attribution,
)


@pytest.fixture(scope="module")
def tokenizer():
    return train_tokenizer(
        ["country capital population australia canberra france paris japan "
         "tokyo | ; - what is the"] * 4, vocab_size=500)


@pytest.fixture(scope="module")
def model(tokenizer):
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16,
                           num_heads=2, num_layers=2, hidden_dim=32,
                           max_position=160)
    return TableBert(config, tokenizer, np.random.default_rng(0))


@pytest.fixture
def table():
    return Table(
        ["country", "capital"],
        [["australia", "canberra"], ["france", "paris"]],
        context=TableContext(title="capital by country"),
        table_id="t",
    )


class TestGradientSaliency:
    def test_scores_cover_all_cells(self, model, table):
        attribution = gradient_saliency(model, table)
        assert set(attribution.scores) == {(r, c) for r in range(2)
                                           for c in range(2)}
        assert attribution.method == "gradient-x-input"

    def test_scores_nonnegative_finite(self, model, table):
        attribution = gradient_saliency(model, table)
        for score in attribution.scores.values():
            assert np.isfinite(score)
            assert score >= 0.0

    def test_model_gradients_cleared(self, model, table):
        gradient_saliency(model, table)
        assert all(p.grad is None for p in model.parameters())

    def test_training_mode_restored(self, model, table):
        model.train()
        gradient_saliency(model, table)
        assert model.training
        model.eval()

    def test_custom_scalar_targets_specific_cell(self, model, table):
        """Explaining a single cell's own representation must rank that
        cell's input as most relevant."""
        batch, serialized = model.batch([table], [None])
        start, end = serialized[0].cell_spans[(1, 1)]  # paris

        def scalar(hidden):
            span = hidden[0, start:end]
            return (span * span).sum()

        attribution = gradient_saliency(model, table, scalar_fn=scalar)
        top_cell, _ = attribution.top_cells(1)[0]
        assert top_cell == (1, 1)

    def test_rejects_nonscalar(self, model, table):
        with pytest.raises(ValueError):
            gradient_saliency(model, table, scalar_fn=lambda h: h[:, 0])


class TestAttentionAttribution:
    def test_scores_sum_under_one(self, model, table):
        attribution = attention_attribution(model, table)
        assert attribution.method == "attention"
        total = sum(attribution.scores.values())
        assert 0.0 <= total <= 1.0 + 1e-6

    def test_works_for_structured_models(self, tokenizer, table):
        config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16,
                               num_heads=2, num_layers=1, hidden_dim=32,
                               max_position=160)
        tapas = Tapas(config, tokenizer, np.random.default_rng(0))
        attribution = attention_attribution(tapas, table)
        assert attribution.scores


class TestAttributionHelpers:
    def test_top_cells_sorted(self, model, table):
        attribution = gradient_saliency(model, table)
        top = attribution.top_cells(4)
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_normalized_sums_to_one(self, model, table):
        normalized = gradient_saliency(model, table).normalized()
        assert sum(normalized.scores.values()) == pytest.approx(1.0)

    def test_render_contains_values_and_bars(self, model, table):
        text = render_attribution(gradient_saliency(model, table))
        assert "france" in text
        assert len(text.splitlines()) == 3  # header + 2 rows
