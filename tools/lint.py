#!/usr/bin/env python3
"""Standalone entry point for the repo lint rules.

Equivalent to ``repro lint`` but importable without installing the
package — CI and pre-commit hooks can run ``python tools/lint.py [paths]``
from the repository root.  Runs the per-file AST rules plus the
whole-tree concurrency pass (REPRO008 guarded-attribute races and
REPRO009 lock-order/blocking-call hazards; see
``repro.analysis.concurrency``).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.lint import run_lint  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or ["src"]
    findings = run_lint(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} finding(s)")
        return 1
    print(f"clean: {', '.join(str(p) for p in paths)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
